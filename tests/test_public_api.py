"""Tests on the public API surface: exports resolve and carry documentation."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.cluster",
    "repro.core",
    "repro.core.apps",
    "repro.transactions",
    "repro.detection",
    "repro.video",
    "repro.storage",
    "repro.network",
    "repro.workloads",
    "repro.analysis",
    "repro.sim",
]


class TestPublicApi:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_package_imports_and_is_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} has no module docstring"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_top_level_exports_are_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert member.__doc__, f"repro.{name} has no docstring"

    def test_version_matches_pyproject(self):
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_core_public_classes_have_documented_public_methods(self):
        from repro.core.system import CroesusSystem
        from repro.transactions.ms_ia import MSIAController
        from repro.transactions.ms_sr import TwoStage2PL

        for cls in (CroesusSystem, MSIAController, TwoStage2PL):
            for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} has no docstring"
