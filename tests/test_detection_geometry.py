"""Tests for bounding boxes and overlap computations."""

import pytest

from repro.detection.geometry import BoundingBox, iou, overlap_ratio


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 10, 20)
        assert box.width == 10
        assert box.height == 20
        assert box.area == 200

    def test_center(self):
        assert BoundingBox(0, 0, 10, 20).center == (5, 10)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(10, 0, 0, 10)
        with pytest.raises(ValueError):
            BoundingBox(0, 10, 10, 0)

    def test_zero_area_box_allowed(self):
        box = BoundingBox(5, 5, 5, 5)
        assert box.area == 0

    def test_intersection_of_overlapping_boxes(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 15, 15)
        assert a.intersection(b) == 25

    def test_intersection_of_disjoint_boxes_is_zero(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(20, 20, 30, 30)
        assert a.intersection(b) == 0

    def test_intersection_is_symmetric(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 20, 10)
        assert a.intersection(b) == b.intersection(a)

    def test_translated(self):
        moved = BoundingBox(0, 0, 10, 10).translated(5, -2)
        assert (moved.x_min, moved.y_min, moved.x_max, moved.y_max) == (5, -2, 15, 8)

    def test_scaled_preserves_center(self):
        box = BoundingBox(0, 0, 10, 10)
        scaled = box.scaled(2.0)
        assert scaled.center == box.center
        assert scaled.area == pytest.approx(box.area * 4)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 10, 10).scaled(0)

    def test_clipped_to_frame(self):
        box = BoundingBox(-10, -10, 2000, 500)
        clipped = box.clipped(1280, 720)
        assert clipped.x_min == 0
        assert clipped.y_min == 0
        assert clipped.x_max == 1280
        assert clipped.y_max == 500

    def test_distance_to_point(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.distance_to_point(5, 5) == 0
        assert box.distance_to_point(8, 9) == 5


class TestIoU:
    def test_identical_boxes(self):
        box = BoundingBox(0, 0, 10, 10)
        assert iou(box, box) == 1.0

    def test_disjoint_boxes(self):
        assert iou(BoundingBox(0, 0, 1, 1), BoundingBox(5, 5, 6, 6)) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(0, 0, 10, 20)
        assert iou(a, b) == pytest.approx(0.5)

    def test_bounded_in_unit_interval(self):
        a = BoundingBox(0, 0, 7, 13)
        b = BoundingBox(3, 2, 22, 9)
        assert 0.0 <= iou(a, b) <= 1.0


class TestOverlapRatio:
    def test_contained_box_has_full_overlap(self):
        outer = BoundingBox(0, 0, 100, 100)
        inner = BoundingBox(10, 10, 20, 20)
        assert overlap_ratio(outer, inner) == 1.0

    def test_symmetric(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 30, 30)
        assert overlap_ratio(a, b) == overlap_ratio(b, a)

    def test_disjoint_is_zero(self):
        assert overlap_ratio(BoundingBox(0, 0, 1, 1), BoundingBox(5, 5, 6, 6)) == 0.0

    def test_at_least_iou(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 0, 15, 10)
        assert overlap_ratio(a, b) >= iou(a, b)
