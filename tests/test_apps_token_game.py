"""Tests for the multi-player AR token game (paper §4.4 worked example)."""

import pytest

from repro.core.apps.token_game import TokenGame
from repro.storage.kvstore import KeyValueStore
from repro.transactions.ms_ia import MSIAController


@pytest.fixture
def game() -> TokenGame:
    store = KeyValueStore()
    controller = MSIAController(store)
    return TokenGame(controller=controller, players={"A": 50, "B": 10, "C": 0, "D": 0})


class TestTokenGame:
    def test_initial_balances(self, game):
        assert game.balance("A") == 50
        assert game.balance("B") == 10
        assert game.total_tokens() == 60

    def test_correct_transfer_confirmed(self, game):
        txn = game.transfer("t1", "A", "B", 20)
        game.run_initial(txn)
        assert game.balance("B") == 30
        outcome = game.run_final(txn, true_recipient="B")
        assert outcome.committed
        assert outcome.apologies == ()
        assert game.balance("A") == 30
        assert game.balance("B") == 30

    def test_wrong_recipient_redirected(self, game):
        txn = game.transfer("t1", "A", "B", 20)
        game.run_initial(txn)
        outcome = game.run_final(txn, true_recipient="D")
        assert outcome.apologies
        assert game.balance("B") == 10   # back to the original balance
        assert game.balance("D") == 20   # the true recipient got the tokens
        assert game.balance("A") == 30

    def test_tokens_conserved_by_redirection(self, game):
        txn = game.transfer("t1", "A", "B", 35)
        game.run_initial(txn)
        game.run_final(txn, true_recipient="C")
        assert game.total_tokens() == 60

    def test_paper_scenario_minimal_retraction(self, game):
        """The §4.4 scenario: A→B 50 (guess wrong, truly A→D), then B→C 10 and
        B→C 50 both confirmed.  Repairing t1 leaves B overdrawn by exactly the
        50 tokens it should never have received; the merge retracts only the
        unaffordable 50-token B→C transfer and keeps the 10-token one."""
        t1 = game.transfer("t1", "A", "B", 50)
        game.run_initial(t1)
        t2 = game.transfer("t2", "B", "C", 10)
        game.run_initial(t2)
        t3 = game.transfer("t3", "B", "C", 50)
        game.run_initial(t3)

        # Final sections of t2 and t3 arrive first and are correct.
        assert game.run_final(t2, true_recipient="C").committed
        assert game.run_final(t3, true_recipient="C").committed
        assert game.balance("C") == 60
        assert game.balance("B") == 0

        # t1's final section learns the true recipient was D.
        outcome = game.run_final(t1, true_recipient="D")
        assert outcome.apologies
        assert game.balance("D") == 50
        # B is now overdrawn by the 50 tokens it passed on to C.
        assert game.balance("B") == -50
        assert not game.invariant_holds()
        assert game.total_tokens() == 60

        # The application-level merge retracts only the unaffordable transfer.
        apologies = game.repair_overdrafts()
        assert len(apologies) == 1
        assert game.retracted_transfers() == ("t3",)
        assert game.invariant_holds()
        assert game.balance("A") == 0
        assert game.balance("B") == 0
        assert game.balance("C") == 10  # the 10-token transfer was retained
        assert game.balance("D") == 50
        assert game.total_tokens() == 60

    def test_repair_is_noop_when_invariant_holds(self, game):
        txn = game.transfer("t1", "A", "B", 20)
        game.run_initial(txn)
        game.run_final(txn, true_recipient="B")
        assert game.repair_overdrafts() == []
        assert game.retracted_transfers() == ()

    def test_invalid_amount_rejected(self, game):
        with pytest.raises(ValueError):
            game.transfer("t1", "A", "B", 0)

    def test_transfer_is_multistage(self, game):
        txn = game.transfer("t1", "A", "B", 5)
        assert txn.initial.rwset.writes
        assert txn.final.rwset.keys >= txn.initial.rwset.writes
