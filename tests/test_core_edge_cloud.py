"""Tests for the edge node, cloud node and client components."""

import pytest

from repro.core.client import Client, ClientResponse
from repro.core.cloud import CloudNode
from repro.core.edge import EdgeNode
from repro.detection.profiles import CLOUD_YOLOV3_416, EDGE_TINY_YOLOV3
from repro.network.topology import CLOUD_XLARGE, EDGE_REGULAR, EDGE_SMALL
from repro.transactions.bank import ANY_LABEL, TransactionBank
from repro.transactions.model import MultiStageTransaction, SectionContext, SectionSpec
from repro.transactions.ops import ReadWriteSet
from repro.video.library import make_video

from helpers import make_detection, make_frame, make_label_set, make_scene_object


def _counting_bank() -> TransactionBank:
    """A bank whose transactions write one key per trigger and apologise on
    corrected labels."""
    bank = TransactionBank()

    def factory(detection, txn_id) -> MultiStageTransaction:
        key = f"seen:{txn_id}"

        def initial(ctx: SectionContext):
            ctx.write(key, ctx.labels.name if ctx.labels is not None else None)
            return key

        def final(ctx: SectionContext):
            corrected = getattr(ctx.labels, "name", None)
            original = ctx.read(key, default=None)
            if corrected != original:
                ctx.apologize(f"{original} -> {corrected}")
                ctx.write(key, corrected)

        rwset = ReadWriteSet(reads=frozenset({key}), writes=frozenset({key}))
        return MultiStageTransaction(
            transaction_id=txn_id,
            initial=SectionSpec(body=initial, rwset=rwset),
            final=SectionSpec(body=final, rwset=rwset),
        )

    bank.register("count", ANY_LABEL, factory)
    return bank


def _edge_node(rngs, consistency: str = "ms-ia", machine=EDGE_REGULAR) -> EdgeNode:
    return EdgeNode(
        profile=EDGE_TINY_YOLOV3,
        machine=machine,
        bank=_counting_bank(),
        rng=rngs.stream("edge"),
        min_confidence=0.05,
        consistency=consistency,
    )


class TestEdgeNode:
    def test_detect_returns_labels_and_latency(self, rngs):
        edge = _edge_node(rngs)
        frame = make_frame(0, make_scene_object(0, "person"))
        labels, latency = edge.detect(frame)
        assert latency > 0
        assert labels.frame_id == 0

    def test_small_machine_is_slower(self, rngs):
        regular = _edge_node(rngs, machine=EDGE_REGULAR)
        small = EdgeNode(
            profile=EDGE_TINY_YOLOV3,
            machine=EDGE_SMALL,
            bank=_counting_bank(),
            rng=rngs.stream("edge-small"),
        )
        frame = make_frame(0, make_scene_object(0))
        regular_latency = sum(regular.detect(frame)[1] for _ in range(30)) / 30
        small_latency = sum(small.detect(frame)[1] for _ in range(30)) / 30
        assert small_latency > regular_latency * 1.5

    def test_filter_labels_drops_low_confidence(self, rngs):
        edge = _edge_node(rngs)
        labels = make_label_set(
            0, make_detection("a", confidence=0.01), make_detection("b", confidence=0.9)
        )
        assert edge.filter_labels(labels).names() == ["b"]

    def test_initial_stage_triggers_one_transaction_per_detection(self, rngs):
        edge = _edge_node(rngs)
        frame = make_frame(0)
        labels = make_label_set(0, make_detection("a"), make_detection("b"))
        outcome = edge.process_initial_stage(frame, labels, now=0.0)
        assert len(outcome.triggered) == 2
        assert outcome.txn_latency > 0
        assert len(outcome.committed) == 2

    def test_final_stage_without_cloud_uses_edge_labels(self, rngs):
        edge = _edge_node(rngs)
        frame = make_frame(0)
        labels = make_label_set(0, make_detection("a"))
        outcome = edge.process_initial_stage(frame, labels, now=0.0)
        final = edge.process_final_stage(outcome, None, now=1.0)
        assert final.match_report is None
        assert final.corrections == 0
        assert all(entry.transaction.is_committed for entry in outcome.committed)

    def test_final_stage_corrects_mislabeled_detection(self, rngs):
        edge = _edge_node(rngs)
        frame = make_frame(0)
        edge_labels = make_label_set(0, make_detection("dog", x=100))
        cloud_labels = make_label_set(0, make_detection("cat", x=100))
        outcome = edge.process_initial_stage(frame, edge_labels, now=0.0)
        final = edge.process_final_stage(outcome, cloud_labels, now=1.0)
        assert final.corrections == 1
        assert final.apologies  # the counting bank apologises on correction

    def test_final_stage_triggers_transactions_for_missed_labels(self, rngs):
        edge = _edge_node(rngs)
        frame = make_frame(0)
        edge_labels = make_label_set(0)  # the edge saw nothing
        cloud_labels = make_label_set(0, make_detection("person", x=200))
        outcome = edge.process_initial_stage(frame, edge_labels, now=0.0)
        final = edge.process_final_stage(outcome, cloud_labels, now=1.0)
        assert final.new_transactions == 1

    def test_ms_sr_consistency_uses_two_stage_2pl(self, rngs):
        from repro.transactions.ms_sr import TwoStage2PL

        edge = _edge_node(rngs, consistency="ms-sr")
        assert isinstance(edge.controller, TwoStage2PL)


class TestCloudNode:
    def test_detection_latency_reflects_profile(self, rngs):
        cloud = CloudNode(CLOUD_YOLOV3_416, CLOUD_XLARGE, rngs.stream("cloud"))
        frame = make_frame(0, make_scene_object(0, "person"))
        latencies = [cloud.detect(frame)[1] for _ in range(20)]
        assert sum(latencies) / len(latencies) == pytest.approx(
            CLOUD_YOLOV3_416.inference_latency, rel=0.2
        )

    def test_model_name(self, rngs):
        cloud = CloudNode(CLOUD_YOLOV3_416, CLOUD_XLARGE, rngs.stream("cloud"))
        assert cloud.model_name == "yolov3-416"


class TestClient:
    def test_frames_stream_from_video(self):
        client = Client(make_video("v1", num_frames=5, seed=0))
        assert len(list(client.frames())) == 5

    def test_render_collects_responses(self):
        client = Client(make_video("v1", num_frames=1, seed=0))
        client.render(ClientResponse(frame_id=0, stage="initial", payload="x"))
        client.render(ClientResponse(frame_id=0, stage="final", payload=None, apologies=("sorry",)))
        assert len(client.responses) == 2
        assert len(client.responses_for(0)) == 2
        assert client.apologies == ("sorry",)
