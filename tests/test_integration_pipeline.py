"""Integration tests: full pipeline, applications wired into the system,
cross-module consistency of the recorded metrics."""

import pytest

from repro.core.apps.smart_campus import SmartCampusApp
from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.core.optimizer import ThresholdEvaluator, brute_force_search
from repro.core.system import CroesusSystem
from repro.detection.profiles import CLOUD_YOLOV3_320, CLOUD_YOLOV3_608
from repro.transactions.checker import check_ms_ia, check_ms_sr
from repro.video.library import make_video


class TestEndToEndPipeline:
    def test_all_library_videos_run(self):
        config = CroesusConfig(seed=2)
        for key in ("v1", "v2", "v3", "v4", "v5"):
            system = CroesusSystem(config)
            result = system.run(make_video(key, num_frames=12, seed=2))
            assert result.num_frames == 12

    def test_frame_metrics_are_internally_consistent(self):
        config = CroesusConfig(seed=2)
        system = CroesusSystem(config)
        result = system.run(make_video("v2", num_frames=25, seed=2))
        for trace in result.traces:
            assert trace.latency.final_latency >= trace.latency.initial_latency
            if not trace.sent_to_cloud:
                assert trace.latency.cloud_detection == 0.0
                assert trace.frame_bytes_sent == 0
            else:
                assert trace.frame_bytes_sent > 0

    def test_ms_sr_and_ms_ia_histories_validate(self):
        for level, checker in (
            (ConsistencyLevel.MS_IA, check_ms_ia),
            (ConsistencyLevel.MS_SR, check_ms_sr),
        ):
            config = CroesusConfig(seed=2, consistency=level)
            system = CroesusSystem(config)
            system.run(make_video("v1", num_frames=20, seed=2))
            result = checker(system.history)
            assert result, result.violations

    def test_optimized_thresholds_meet_target_on_fresh_run(self):
        """Thresholds found by the optimiser should hold up when plugged back
        into a full system run on the same video."""
        config = CroesusConfig(seed=9)
        evaluator = ThresholdEvaluator.profile(config, "v1", num_frames=60)
        optimum = brute_force_search(evaluator, target_f_score=0.75)
        assert optimum.feasible

        tuned = config.with_thresholds(*optimum.thresholds)
        system = CroesusSystem(tuned)
        result = system.run(make_video("v1", num_frames=60, seed=9))
        assert result.f_score >= 0.75 - 0.1  # allow small sampling slack
        assert result.bandwidth_utilization <= optimum.best.bandwidth_utilization + 0.15

    def test_cloud_model_size_affects_detection_latency(self):
        small = CroesusConfig(seed=2, lower_threshold=0.0, upper_threshold=0.999).with_cloud_profile(
            CLOUD_YOLOV3_320
        )
        large = CroesusConfig(seed=2, lower_threshold=0.0, upper_threshold=0.999).with_cloud_profile(
            CLOUD_YOLOV3_608
        )
        small_run = CroesusSystem(small).run(make_video("v1", num_frames=20, seed=2))
        large_run = CroesusSystem(large).run(make_video("v1", num_frames=20, seed=2))
        assert (
            large_run.average_latency.cloud_detection
            > small_run.average_latency.cloud_detection * 2
        )


class TestApplicationIntegration:
    def test_smart_campus_runs_inside_croesus_system(self):
        """Wire the campus bank into the full pipeline over a synthetic video
        whose detections use building names."""
        from repro.video.synthetic import ObjectClassSpec, SyntheticVideo
        from repro.sim.rng import RngRegistry

        buildings = {"Engineering": {"study_rooms": 3}, "Library": {"study_rooms": 2}}
        app = SmartCampusApp(buildings=buildings)

        config = CroesusConfig(seed=3)
        # The system takes the app's (still empty) bank; installing the app
        # afterwards registers the trigger rules and seeds the edge store.
        system = CroesusSystem(config, bank=app.bank)
        app.install(system.edge.store)

        video = SyntheticVideo(
            name="campus",
            query_class="Engineering",
            classes=(
                ObjectClassSpec(
                    name="Engineering",
                    confusable_name="Library",
                    arrival_rate=0.4,
                    size_fraction=0.3,
                ),
                ObjectClassSpec(
                    name="Library",
                    confusable_name="Engineering",
                    arrival_rate=0.3,
                    size_fraction=0.3,
                ),
            ),
            num_frames=30,
            rng=RngRegistry(3).stream("campus-video"),
            auxiliary_click_rate=0.3,
        )
        result = system.run(video)
        assert result.total_transactions > 0
        # Reservations and info lookups should have written to the store.
        reservation_keys = [k for k in system.edge.store.keys() if k.startswith("reservation:")]
        assert isinstance(reservation_keys, list)
