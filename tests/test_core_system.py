"""Tests for the end-to-end Croesus pipeline."""

import pytest

from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.core.client import Client
from repro.core.system import CroesusSystem
from repro.network.topology import EdgeCloudTopology
from repro.transactions.checker import check_ms_ia
from repro.video.library import make_video


def _run(config: CroesusConfig, video_key: str = "v1", num_frames: int = 25):
    system = CroesusSystem(config)
    video = make_video(video_key, num_frames=num_frames, seed=config.seed)
    return system, system.run(video)


class TestCroesusSystem:
    def test_processes_every_frame(self):
        _, result = _run(CroesusConfig(seed=3), num_frames=20)
        assert result.num_frames == 20
        assert [t.frame_id for t in result.traces] == list(range(20))

    def test_full_validation_sends_every_detected_frame(self):
        config = CroesusConfig(seed=3, lower_threshold=0.0, upper_threshold=0.999)
        _, result = _run(config)
        frames_with_detections = [t for t in result.traces if len(t.edge_labels) > 0]
        assert all(t.sent_to_cloud for t in frames_with_detections)

    def test_empty_validate_interval_never_sends(self):
        config = CroesusConfig(seed=3, lower_threshold=0.0, upper_threshold=0.0)
        _, result = _run(config)
        assert result.bandwidth_utilization == pytest.approx(0.0, abs=0.05)

    def test_wider_interval_increases_bandwidth(self):
        narrow = _run(CroesusConfig(seed=3, lower_threshold=0.45, upper_threshold=0.55))[1]
        wide = _run(CroesusConfig(seed=3, lower_threshold=0.1, upper_threshold=0.9))[1]
        assert wide.bandwidth_utilization >= narrow.bandwidth_utilization

    def test_validation_improves_accuracy(self):
        """Sending frames to the cloud must not hurt the observed F-score."""
        never = _run(CroesusConfig(seed=5, lower_threshold=0.0, upper_threshold=0.0), num_frames=40)[1]
        always = _run(CroesusConfig(seed=5, lower_threshold=0.0, upper_threshold=0.999), num_frames=40)[1]
        assert always.f_score > never.f_score

    def test_initial_latency_much_smaller_than_final_for_validated_frames(self):
        config = CroesusConfig(seed=3, lower_threshold=0.0, upper_threshold=0.999)
        _, result = _run(config)
        sent = [t for t in result.traces if t.sent_to_cloud]
        assert sent
        for trace in sent:
            assert trace.latency.final_latency > trace.latency.initial_latency + 0.5

    def test_initial_latency_dominated_by_edge_detection(self):
        _, result = _run(CroesusConfig(seed=3))
        breakdown = result.average_latency
        assert breakdown.edge_detection > breakdown.edge_transfer
        assert breakdown.initial_txn < 0.01

    def test_transactions_triggered_for_detections(self):
        _, result = _run(CroesusConfig(seed=3), num_frames=40)
        assert result.total_transactions > 0

    def test_client_receives_initial_and_final_responses(self):
        config = CroesusConfig(seed=3)
        system = CroesusSystem(config)
        video = make_video("v1", num_frames=10, seed=3)
        client = Client(video)
        system.run(video, client=client)
        stages = {response.stage for response in client.responses}
        assert stages == {"initial", "final"}

    def test_history_satisfies_ms_ia(self):
        config = CroesusConfig(seed=3)
        system, _ = _run(config, num_frames=30)
        assert len(system.history) > 0
        assert check_ms_ia(system.history)

    def test_ms_sr_mode_runs(self):
        config = CroesusConfig(seed=3, consistency=ConsistencyLevel.MS_SR)
        system, result = _run(config, num_frames=20)
        assert result.num_frames == 20
        from repro.transactions.ms_sr import TwoStage2PL

        assert isinstance(system.edge.controller, TwoStage2PL)

    def test_same_seed_reproduces_run(self):
        first = _run(CroesusConfig(seed=11), num_frames=15)[1]
        second = _run(CroesusConfig(seed=11), num_frames=15)[1]
        assert first.summary() == second.summary()

    def test_same_location_topology_is_faster(self):
        far = CroesusConfig(
            seed=3,
            lower_threshold=0.0,
            upper_threshold=0.999,
            topology=EdgeCloudTopology.regular_edge_different_location(),
        )
        near = CroesusConfig(
            seed=3,
            lower_threshold=0.0,
            upper_threshold=0.999,
            topology=EdgeCloudTopology.regular_edge_same_location(),
        )
        far_result = _run(far, num_frames=30)[1]
        near_result = _run(near, num_frames=30)[1]
        assert near_result.average_final_latency < far_result.average_final_latency

    def test_bandwidth_accounting_matches_sent_frames(self):
        config = CroesusConfig(seed=3)
        system = CroesusSystem(config)
        video = make_video("v1", num_frames=20, seed=3)
        result = system.run(video)
        sent_frames = sum(1 for t in result.traces if t.sent_to_cloud)
        # two transfers (uplink frame + downlink labels) per validated frame
        assert system.edge_cloud.transfer_count == 2 * sent_frames

    def test_repeated_runs_do_not_accumulate_events(self):
        config = CroesusConfig(seed=3)
        system = CroesusSystem(config)
        num_frames = 10
        system.run(make_video("v1", num_frames=num_frames, seed=3))
        history_after_first = len(system.history)
        # one initial_commit + one final_commit event per frame, per run
        assert len(system.events) == 2 * num_frames

        system.run(make_video("v1", num_frames=num_frames, seed=4))
        assert len(system.events) == 2 * num_frames
        # the history restarts too (same order of magnitude as one run,
        # not the concatenation of both)
        assert history_after_first > 0
        assert len(system.history) < 2 * history_after_first
