"""Tests for the geo-hierarchical deployment tier.

Covers the geo spec/config validation surface, the WAN fabric, the
reconciler's convergence property (hypothesis: the converged state is
independent of delivery order), commit-variant conformance (the three
cross-region policies only change messaging, never store outcomes), the
geo determinism golden pin, and single-region inertness (``regions=1``
builds no geo machinery and stays bit-for-bit on the golden pins).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ScenarioSpec, run
from repro.experiments.runner import build_cluster_config, build_streams
from repro.geo import (
    CROSS_REGION_POLICIES,
    PLACEMENTS,
    GeoConfig,
    GeoRouter,
    GeoSystem,
    PlacementTracker,
    Reconciler,
    ShipStamp,
    WanFabric,
    WriteShip,
)
from repro.geo.placement import PLACEMENT_MIN_ACCESSES
from repro.network.topology import WAN_LINKS
from repro.sim.rng import RngRegistry
from repro.traffic.shedding import ApologyBudget


def geo_spec(**overrides) -> ScenarioSpec:
    """The small seeded geo cell the conformance and pin tests share."""
    base = dict(
        deployment="cluster",
        seed=2022,
        streams=8,
        frames=8,
        consistency="ms-sr",
        num_edges=4,
        partitions_per_edge=2,
        workload="hotspot",
        hot_key_range=50,
        regions=2,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestGeoConfigValidation:
    def test_defaults_are_valid(self):
        config = GeoConfig()
        assert config.regions == 1
        assert config.cross_region_policy in CROSS_REGION_POLICIES
        assert config.placement in PLACEMENTS

    def test_rejects_bad_regions(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=0)

    def test_rejects_unknown_wan_link(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=2, wan_link="carrier-pigeon")

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=2, cross_region_policy="three-phase-commit")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=2, placement="random")

    def test_rejects_bad_placement_interval(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=2, placement_interval_s=0.0)

    def test_rejects_bad_apology_budget(self):
        with pytest.raises(ValueError):
            GeoConfig(regions=2, apology_budget_per_s=0.0)


class TestGeoSpecValidation:
    def test_geo_fields_round_trip(self):
        spec = geo_spec(wan_link="intercontinental", cross_region_policy="migrated-2pc")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_rejects_regions_on_single_deployment(self):
        with pytest.raises(ValueError):
            ScenarioSpec(deployment="single", regions=2)

    def test_rejects_unknown_wan_link(self):
        with pytest.raises(ValueError):
            geo_spec(wan_link="string-and-cans")

    def test_rejects_unknown_cross_region_policy(self):
        with pytest.raises(ValueError):
            geo_spec(cross_region_policy="hope")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            geo_spec(placement="chaotic")

    def test_rejects_indivisible_edge_count(self):
        with pytest.raises(ValueError):
            geo_spec(num_edges=3)

    def test_rejects_non_immediate_transaction_policy(self):
        with pytest.raises(ValueError):
            geo_spec(transaction_policy="batched-2pc")

    def test_rejects_replication(self):
        with pytest.raises(ValueError):
            geo_spec(replication_factor=2)

    def test_rejects_failure_schedule(self):
        with pytest.raises(ValueError):
            geo_spec(failure_schedule=((1, 2.5, 4.0),), checkpoint_interval_s=1.0)

    def test_rejects_resharding(self):
        with pytest.raises(ValueError):
            geo_spec(resharding=((2.0, 0, 1),), checkpoint_interval_s=1.0)

    def test_single_region_keeps_the_full_surface(self):
        # regions=1 is inert, so none of the geo restrictions apply.
        spec = geo_spec(regions=1, transaction_policy="batched-2pc")
        assert spec.regions == 1


class TestWanFabric:
    def test_builds_a_full_mesh(self):
        fabric = WanFabric(regions=3, wan_link="cross-country", rngs=RngRegistry(7))
        pairs = {(a, b) for a in range(3) for b in range(3) if a != b}
        for src, dst in pairs:
            assert fabric.channel(src, dst) is not None

    def test_rejects_single_region(self):
        with pytest.raises(ValueError):
            WanFabric(regions=1, wan_link="cross-country", rngs=RngRegistry(7))

    def test_rejects_unknown_link(self):
        with pytest.raises(ValueError):
            WanFabric(regions=2, wan_link="smoke-signal", rngs=RngRegistry(7))

    def test_channels_use_the_multi_hop_profile(self):
        fabric = WanFabric(regions=2, wan_link="intercontinental", rngs=RngRegistry(7))
        path = WAN_LINKS["intercontinental"]
        profile = fabric.channel(0, 1).profile
        assert profile.propagation_delay == pytest.approx(path.propagation_delay)
        assert profile.bandwidth_bytes_per_sec == pytest.approx(
            path.bandwidth_bytes_per_sec
        )

    def test_accounting_aggregates_over_the_mesh(self):
        fabric = WanFabric(regions=2, wan_link="cross-country", rngs=RngRegistry(7))
        fabric.channel(0, 1).send(1000)
        fabric.channel(1, 0).send(500)
        assert fabric.total_bytes == 1500
        assert fabric.transfer_count == 2
        fabric.reset()
        assert fabric.total_bytes == 0


class TestGeoRouter:
    def test_stripes_regions_first(self):
        router = GeoRouter(regions=2, edges_per_region=2)
        edges = [router.place(f"s{i}") for i in range(8)]
        regions = [edge // 2 for edge in edges]
        assert regions == [0, 1, 0, 1, 0, 1, 0, 1]
        # Within each region, streams cycle over both edges.
        assert sorted(set(edges)) == [0, 1, 2, 3]

    def test_uneven_stream_count_loads_low_regions_first(self):
        router = GeoRouter(regions=4, edges_per_region=1)
        edges = [router.place(f"s{i}") for i in range(6)]
        assert edges == [0, 1, 2, 3, 0, 1]


class TestPlacementTracker:
    def test_dominant_region_requires_min_accesses(self):
        tracker = PlacementTracker(num_partitions=2, regions=2)
        for _ in range(PLACEMENT_MIN_ACCESSES - 1):
            tracker.observe(0, 1)
        assert tracker.dominant_region(0, home_region=0) is None
        tracker.observe(0, 1)
        assert tracker.dominant_region(0, home_region=0) == 1

    def test_dominance_needs_a_margin_over_home(self):
        tracker = PlacementTracker(num_partitions=1, regions=2)
        for _ in range(10):
            tracker.observe(0, 0)
        for _ in range(12):
            tracker.observe(0, 1)
        # 12 < 1.5 * 10: not dominant enough to justify a move.
        assert tracker.dominant_region(0, home_region=0) is None
        for _ in range(3):
            tracker.observe(0, 1)
        assert tracker.dominant_region(0, home_region=0) == 1

    def test_forget_resets_the_partition(self):
        tracker = PlacementTracker(num_partitions=1, regions=2)
        for _ in range(20):
            tracker.observe(0, 1)
        tracker.forget(0)
        assert tracker.counts(0) == (0, 0)
        assert tracker.dominant_region(0, home_region=0) is None


class TestReconciler:
    def stamp(self, t, region, seq):
        return ShipStamp(commit_time=t, origin_region=region, seq=seq)

    def test_last_writer_wins(self):
        reconciler = Reconciler()
        reconciler.deliver(WriteShip("k", "old", self.stamp(1.0, 0, 1), arrival_time=1.0))
        reconciler.deliver(WriteShip("k", "new", self.stamp(2.0, 1, 2), arrival_time=2.1))
        assert reconciler.snapshot() == {"k": "new"}

    def test_stale_ship_is_dropped(self):
        reconciler = Reconciler()
        reconciler.deliver(WriteShip("k", "new", self.stamp(2.0, 0, 2), arrival_time=2.0))
        won = reconciler.deliver(WriteShip("k", "old", self.stamp(1.0, 1, 1), arrival_time=2.5))
        assert not won
        assert reconciler.snapshot() == {"k": "new"}
        assert reconciler.stale_drops == 1

    def test_in_flight_overlap_is_a_conflict(self):
        reconciler = Reconciler()
        # Region 0 commits at t=1.0; the ship lands at t=1.5.  Region 1
        # commits the same key at t=1.2 — before region 0's write had
        # landed — so the writes raced and one of them owes an apology.
        reconciler.deliver(WriteShip("k", "a", self.stamp(1.0, 0, 1), arrival_time=1.5))
        reconciler.deliver(WriteShip("k", "b", self.stamp(1.2, 1, 2), arrival_time=1.2))
        assert reconciler.conflicts == 1
        assert reconciler.apologies == 1

    def test_sequential_writes_do_not_conflict(self):
        reconciler = Reconciler()
        reconciler.deliver(WriteShip("k", "a", self.stamp(1.0, 0, 1), arrival_time=1.1))
        reconciler.deliver(WriteShip("k", "b", self.stamp(2.0, 1, 2), arrival_time=2.1))
        assert reconciler.conflicts == 0

    def test_same_origin_never_conflicts(self):
        reconciler = Reconciler()
        reconciler.deliver(WriteShip("k", "a", self.stamp(1.0, 0, 1), arrival_time=1.5))
        reconciler.deliver(WriteShip("k", "b", self.stamp(1.2, 0, 2), arrival_time=1.7))
        assert reconciler.conflicts == 0

    def test_budget_caps_apologies(self):
        reconciler = Reconciler(budget=ApologyBudget(per_second=1.0, burst=1))
        for seq in range(4):
            reconciler.deliver(
                WriteShip("k", seq, self.stamp(1.0 + seq * 0.01, seq % 2, seq + 1),
                          arrival_time=1.5)
            )
        assert reconciler.conflicts >= 2
        assert reconciler.apologies < reconciler.conflicts


#: Ship batches for the convergence property: a handful of keys and
#: regions, arbitrary commit times, unique sequence numbers.
ships_strategy = st.lists(
    st.tuples(
        st.sampled_from(["k0", "k1", "k2"]),
        st.integers(min_value=0, max_value=2),  # origin region
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),  # flight time
    ),
    min_size=0,
    max_size=20,
)


@settings(deadline=None, max_examples=200)
@given(ships_strategy, st.randoms(use_true_random=False))
def test_reconciled_state_is_independent_of_delivery_order(entries, random):
    """The hypothesis property: for ANY interleaving of deliveries, the
    reconciler converges to the state the stamp order dictates — i.e.
    what a serial 2PC execution in commit order would have left behind."""
    ships = [
        WriteShip(key, value=seq, stamp=ShipStamp(commit, region, seq),
                  arrival_time=commit + flight)
        for seq, (key, region, commit, flight) in enumerate(entries)
    ]
    in_order = Reconciler()
    for ship in sorted(ships, key=lambda s: s.stamp):
        in_order.deliver(ship)
    shuffled = list(ships)
    random.shuffle(shuffled)
    any_order = Reconciler()
    for ship in shuffled:
        any_order.deliver(ship)
    assert any_order.snapshot() == in_order.snapshot()


class TestCommitVariantConformance:
    """The three cross-region policies model different WAN messaging
    over the *same* store execution: everything except the geo
    messaging metrics must be identical across the policy grid."""

    @pytest.fixture(scope="class")
    def reports(self):
        return {
            policy: run(geo_spec(cross_region_policy=policy))
            for policy in CROSS_REGION_POLICIES
        }

    def test_policy_is_echoed_in_the_geo_block(self, reports):
        for policy, report in reports.items():
            assert report.geo["cross_region_policy"] == policy

    def test_store_outcomes_are_policy_independent(self, reports):
        baseline = reports["global-2pc"]
        for report in reports.values():
            assert report.frames == baseline.frames
            assert report.f_score == baseline.f_score
            assert report.transactions == baseline.transactions
            assert report.cross_partition_txns == baseline.cross_partition_txns
            assert report.geo["cross_region_txns"] == baseline.geo["cross_region_txns"]
            assert report.cross_region_txn_fraction == baseline.cross_region_txn_fraction

    def test_migrated_never_exceeds_global_round_trips(self, reports):
        assert (
            reports["migrated-2pc"].wan_round_trips_per_txn
            <= reports["global-2pc"].wan_round_trips_per_txn
        )
        assert reports["migrated-2pc"].geo["migrated_handoffs"] > 0

    def test_async_has_no_synchronous_commit_charge(self, reports):
        async_report = reports["async-reconcile"]
        assert async_report.geo["cross_region_mean_ms"] == 0.0
        assert async_report.geo["reconcile_ships"] > 0
        # Exactly one one-way ship per (commit round, remote region).
        assert async_report.wan_round_trips_per_txn >= 1.0

    def test_events_carry_the_wan_timeline(self):
        from repro.analysis.timeline import geo_profile

        config = build_cluster_config(geo_spec())
        system = GeoSystem(
            config,
            GeoConfig(regions=2, cross_region_policy="global-2pc"),
        )
        system.run(build_streams(geo_spec()))
        profile = geo_profile(system.events)
        assert profile.ship_count > 0
        assert profile.wan_round_trips == system.geo_summary()["wan_round_trips"]
        assert profile.wan_bytes == system.geo_summary()["wan_bytes"]
        assert profile.ships_by_policy() == {"global-2pc": profile.ship_count}


class TestGeoDeterminism:
    """The geo golden pin: the seeded 2-region cell must never drift."""

    GOLDEN = {
        "cross_region_txn_fraction": 0.9655172413793104,
        "wan_round_trips_per_txn": 3.4285714285714284,
        "makespan_s": 4.856657567660452,
        "throughput_fps": 13.177787214433993,
        "f_score": 0.9203539823008849,
    }

    def test_seeded_geo_run_matches_golden_values(self):
        report = run(geo_spec())
        for key, value in self.GOLDEN.items():
            assert getattr(report, key) == pytest.approx(value, rel=1e-12, abs=1e-12), key
        assert report.geo["wan_bytes"] == 49152
        assert report.geo["wan_round_trips"] == 96
        assert report.geo["cross_region_txns"] == 28

    def test_geo_json_is_deterministic(self):
        spec = geo_spec(cross_region_policy="async-reconcile", placement="dominant-region")
        assert run(spec).to_json() == run(spec).to_json()


class TestSingleRegionInertness:
    """``regions=1`` must build zero geo machinery and keep every
    single-region seeded run bit-for-bit identical to a plain cluster."""

    def test_runner_emits_no_geo_block(self):
        report = run(geo_spec(regions=1))
        assert report.geo is None
        assert report.cross_region_txn_fraction == 0.0
        assert report.wan_round_trips_per_txn == 0.0

    def test_geo_system_with_one_region_is_plain(self):
        config = build_cluster_config(geo_spec(regions=1))
        system = GeoSystem(config, GeoConfig(regions=1))
        assert system.wan is None
        assert system.reconciler is None
        assert not isinstance(system.router, GeoRouter)

    def test_single_region_report_matches_the_plain_cluster(self):
        plain = geo_spec(regions=1)
        report = run(plain)
        payload = report.to_dict()
        # The geo columns are present but zeroed — consumers never
        # branch on key presence (the report schema's contract).
        assert payload["geo"] is None
        golden = ScenarioSpec(deployment="cluster", num_edges=2, streams=4, frames=6, seed=11)
        pinned = run(golden)
        assert pinned.makespan_s == pytest.approx(3.5568000021864665, rel=1e-12)
        assert pinned.geo is None
