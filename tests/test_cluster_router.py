"""Tests for the stream-to-edge placement policies."""

import numpy as np
import pytest

from repro.cluster.router import (
    ROUTER_POLICIES,
    ConsistentHashRouter,
    HotspotRouter,
    LeastLoadedRouter,
    MigratingRouter,
    MigrationTrigger,
    RoundRobinRouter,
    RoutingError,
    make_router,
)

STREAMS = [f"cam{i}" for i in range(16)]


class TestRoundRobin:
    def test_cycles_through_edges(self):
        router = RoundRobinRouter(num_edges=3)
        assert router.assign(STREAMS[:6]) == [0, 1, 2, 0, 1, 2]

    def test_single_edge(self):
        router = RoundRobinRouter(num_edges=1)
        assert set(router.assign(STREAMS)) == {0}


class TestConsistentHash:
    def test_placement_depends_only_on_stream_name(self):
        first = ConsistentHashRouter(num_edges=4).assign(STREAMS)
        shuffled = ConsistentHashRouter(num_edges=4).assign(list(reversed(STREAMS)))
        assert first == list(reversed(shuffled))

    def test_adding_streams_does_not_move_existing_ones(self):
        router = ConsistentHashRouter(num_edges=4)
        before = {name: router.place(name) for name in STREAMS[:8]}
        router.assign(STREAMS[8:])
        assert {name: router.place(name) for name in STREAMS[:8]} == before

    def test_all_edges_in_range(self):
        router = ConsistentHashRouter(num_edges=5)
        assert all(0 <= edge < 5 for edge in router.assign(STREAMS))

    def test_rejects_bad_virtual_nodes(self):
        with pytest.raises(RoutingError):
            ConsistentHashRouter(num_edges=2, virtual_nodes=0)


class TestLeastLoaded:
    def test_balances_homogeneous_edges(self):
        router = LeastLoadedRouter(num_edges=4)
        placements = router.assign(STREAMS[:8])
        assert sorted(placements.count(edge) for edge in range(4)) == [2, 2, 2, 2]

    def test_slow_edge_absorbs_fewer_streams(self):
        # Edge 0 is twice as slow: each stream costs it double.
        router = LeastLoadedRouter(num_edges=2, compute_scales=[2.0, 1.0])
        placements = router.assign(STREAMS[:9])
        assert placements.count(1) > placements.count(0)

    def test_rejects_mismatched_scales(self):
        with pytest.raises(RoutingError):
            LeastLoadedRouter(num_edges=2, compute_scales=[1.0])
        with pytest.raises(RoutingError):
            LeastLoadedRouter(num_edges=2, compute_scales=[1.0, -1.0])


class TestHotspot:
    def test_seeded_placements_are_deterministic(self):
        a = HotspotRouter(4, rng=np.random.default_rng(9), hot_fraction=0.7).assign(STREAMS)
        b = HotspotRouter(4, rng=np.random.default_rng(9), hot_fraction=0.7).assign(STREAMS)
        assert a == b

    def test_hot_edge_receives_the_majority(self):
        router = HotspotRouter(4, rng=np.random.default_rng(3), hot_fraction=0.9)
        placements = router.assign([f"cam{i}" for i in range(60)])
        assert placements.count(0) > 60 // 2

    def test_full_skew_sends_everything_to_the_hot_edge(self):
        router = HotspotRouter(3, rng=np.random.default_rng(0), hot_fraction=1.0, hot_edge=2)
        assert set(router.assign(STREAMS)) == {2}

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RoutingError):
            HotspotRouter(2, rng=rng, hot_fraction=1.5)
        with pytest.raises(RoutingError):
            HotspotRouter(2, rng=rng, hot_edge=2)


class TestMakeRouter:
    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    def test_builds_every_policy(self, policy):
        router = make_router(policy, num_edges=3, rng=np.random.default_rng(1))
        assert router.name == policy
        assert 0 <= router.place("cam0") < 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(RoutingError):
            make_router("random", num_edges=2)

    def test_hotspot_requires_rng(self):
        with pytest.raises(RoutingError):
            make_router("hotspot", num_edges=2)

    def test_zero_edges_rejected(self):
        with pytest.raises(RoutingError):
            make_router("round-robin", num_edges=0)


class TestMigrationTrigger:
    def test_fires_at_the_high_watermark(self):
        trigger = MigrationTrigger(high=0.8, low=0.4)
        assert not trigger.observe(0.5)
        assert trigger.observe(0.8)
        assert trigger.observe(0.9)  # observing does not consume

    def test_hysteresis_band_after_disarm(self):
        trigger = MigrationTrigger(high=0.8, low=0.4)
        assert trigger.observe(0.9)
        trigger.disarm()
        # still overloaded, but the trigger is spent until it drains
        assert not trigger.observe(0.95)
        assert not trigger.observe(0.6)  # above low: stays disarmed
        assert not trigger.observe(0.4)  # re-arms, but 0.4 < high
        assert trigger.armed
        assert trigger.observe(0.85)  # armed again: fires

    def test_rejects_inverted_band(self):
        with pytest.raises(RoutingError):
            MigrationTrigger(high=0.3, low=0.5)
        with pytest.raises(RoutingError):
            MigrationTrigger(high=0.5, low=0.0)


class TestMigratingRouter:
    def test_initial_placement_matches_least_loaded(self):
        migrating = MigratingRouter(3)
        least = LeastLoadedRouter(3)
        assert migrating.assign(STREAMS) == least.assign(STREAMS)

    def test_decides_to_migrate_off_a_saturated_edge(self):
        router = MigratingRouter(3, high=0.8, low=0.4)
        assert router.decide(0, [0.95, 0.3, 0.6]) == 1

    def test_no_decision_below_the_threshold(self):
        router = MigratingRouter(3, high=0.8, low=0.4)
        assert router.decide(0, [0.7, 0.1, 0.1]) is None

    def test_no_decision_without_a_drained_target(self):
        router = MigratingRouter(3, high=0.8, low=0.4)
        assert router.decide(0, [0.95, 0.9, 0.85]) is None
        # the trigger was not consumed: a drained edge later still wins
        assert router.decide(0, [0.95, 0.2, 0.85]) == 1

    def test_migration_consumes_the_trigger(self):
        router = MigratingRouter(3, high=0.8, low=0.4)
        assert router.decide(0, [0.95, 0.2, 0.85]) == 1
        # immediately after a migration the edge is still hot, but disarmed
        assert router.decide(0, [0.95, 0.1, 0.85]) is None

    def test_rejects_wrong_load_vector(self):
        router = MigratingRouter(3)
        with pytest.raises(RoutingError):
            router.decide(0, [0.5, 0.5])
