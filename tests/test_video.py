"""Tests for the synthetic video substrate."""

import numpy as np
import pytest

from repro.detection.geometry import BoundingBox
from repro.video.frames import Frame
from repro.video.library import VIDEO_LIBRARY, make_video
from repro.video.scene import SceneObject
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo


class TestSceneObject:
    def test_visibility_bounds(self):
        with pytest.raises(ValueError):
            SceneObject(0, "x", BoundingBox(0, 0, 10, 10), visibility=0.0)
        with pytest.raises(ValueError):
            SceneObject(0, "x", BoundingBox(0, 0, 10, 10), visibility=1.5)

    def test_difficulty_bounds(self):
        with pytest.raises(ValueError):
            SceneObject(0, "x", BoundingBox(0, 0, 10, 10), difficulty=0.5)

    def test_advanced_moves_by_velocity(self):
        obj = SceneObject(0, "x", BoundingBox(10, 10, 20, 20), velocity=(5.0, -2.0))
        moved = obj.advanced(1280, 720)
        assert moved.box.x_min == 15
        assert moved.box.y_min == 8
        assert moved.object_id == obj.object_id

    def test_advanced_with_zero_velocity_returns_same(self):
        obj = SceneObject(0, "x", BoundingBox(10, 10, 20, 20))
        assert obj.advanced(1280, 720) is obj

    def test_advanced_clips_to_frame(self):
        obj = SceneObject(0, "x", BoundingBox(1270, 0, 1280, 10), velocity=(100.0, 0.0))
        moved = obj.advanced(1280, 720)
        assert moved.box.x_max <= 1280

    def test_is_visible_in_frame(self):
        big = SceneObject(0, "x", BoundingBox(0, 0, 10, 10))
        assert big.is_visible_in_frame
        sliver = SceneObject(0, "x", BoundingBox(0, 0, 1, 1))
        assert not sliver.is_visible_in_frame


class TestFrame:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Frame(frame_id=0, width=0, height=100)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Frame(frame_id=0, width=10, height=10, size_bytes=0)

    def test_objects_of_class(self):
        dog = SceneObject(0, "dog", BoundingBox(0, 0, 10, 10))
        cat = SceneObject(1, "cat", BoundingBox(20, 20, 30, 30))
        frame = Frame(frame_id=0, width=100, height=100, objects=(dog, cat))
        assert frame.objects_of_class("dog") == (dog,)
        assert frame.object_count == 2


class TestSyntheticVideo:
    def _video(self, seed: int = 0, num_frames: int = 50) -> SyntheticVideo:
        return SyntheticVideo(
            name="test",
            query_class="person",
            classes=(ObjectClassSpec(name="person", arrival_rate=0.5),),
            num_frames=num_frames,
            rng=np.random.default_rng(seed),
        )

    def test_produces_requested_number_of_frames(self):
        frames = list(self._video(num_frames=25).frames())
        assert len(frames) == 25
        assert [f.frame_id for f in frames] == list(range(25))

    def test_objects_eventually_appear(self):
        frames = list(self._video().frames())
        assert any(frame.object_count > 0 for frame in frames)

    def test_objects_persist_across_frames(self):
        """An object id seen in one frame should usually appear again."""
        frames = list(self._video().frames())
        seen: dict[int, int] = {}
        for frame in frames:
            for obj in frame.objects:
                seen[obj.object_id] = seen.get(obj.object_id, 0) + 1
        assert seen, "no objects generated"
        assert max(seen.values()) > 1

    def test_same_seed_reproduces_stream(self):
        first = [(f.frame_id, f.object_count) for f in self._video(seed=3).frames()]
        second = [(f.frame_id, f.object_count) for f in self._video(seed=3).frames()]
        assert first == second

    def test_requires_positive_frames(self):
        with pytest.raises(ValueError):
            SyntheticVideo(
                name="bad",
                query_class="x",
                classes=(ObjectClassSpec(name="x"),),
                num_frames=0,
                rng=np.random.default_rng(0),
            )

    def test_requires_at_least_one_class(self):
        with pytest.raises(ValueError):
            SyntheticVideo(
                name="bad", query_class="x", classes=(), num_frames=5, rng=np.random.default_rng(0)
            )

    def test_frames_carry_query_class(self):
        frame = next(iter(self._video().frames()))
        assert frame.query_class == "person"


class TestVideoLibrary:
    def test_library_has_paper_videos_plus_stress(self):
        assert set(VIDEO_LIBRARY) == {"v1", "v2", "v3", "v4", "v5", "stress"}

    def test_stress_video_is_content_free(self):
        video = make_video("stress", num_frames=20, seed=3)
        frames = list(video.frames())
        assert all(frame.object_count == 0 for frame in frames)
        assert all(not frame.auxiliary_input for frame in frames)

    def test_make_video_returns_stream(self):
        video = make_video("v1", num_frames=10, seed=1)
        assert len(list(video.frames())) == 10

    def test_unknown_video_rejected(self):
        with pytest.raises(KeyError):
            make_video("v9")

    def test_query_classes_match_paper(self):
        assert VIDEO_LIBRARY["v1"].query_class == "dog"
        assert VIDEO_LIBRARY["v3"].query_class == "airplane"
        assert VIDEO_LIBRARY["v4"].query_class == "person"

    def test_airport_objects_are_easier_than_mall(self):
        airport = VIDEO_LIBRARY["v3"].classes[0]
        mall = VIDEO_LIBRARY["v4"].classes[0]
        assert airport.difficulty < mall.difficulty
        assert airport.visibility > mall.visibility
        assert airport.size_fraction > mall.size_fraction

    def test_same_seed_same_video_reproducible(self):
        first = [f.object_count for f in make_video("v2", num_frames=20, seed=5).frames()]
        second = [f.object_count for f in make_video("v2", num_frames=20, seed=5).frames()]
        assert first == second
