"""Tests for the Croesus configuration."""

import pytest

from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.detection.profiles import CLOUD_YOLOV3_608
from repro.network.topology import EdgeCloudTopology


class TestCroesusConfig:
    def test_defaults_are_valid(self):
        config = CroesusConfig()
        assert config.consistency is ConsistencyLevel.MS_IA
        assert 0.0 <= config.lower_threshold <= config.upper_threshold < 1.0

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CroesusConfig(lower_threshold=0.8, upper_threshold=0.2)
        with pytest.raises(ValueError):
            CroesusConfig(lower_threshold=-0.1, upper_threshold=0.5)

    def test_invalid_min_confidence_rejected(self):
        with pytest.raises(ValueError):
            CroesusConfig(min_confidence=1.0)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            CroesusConfig(match_overlap=1.5)

    def test_invalid_operations_rejected(self):
        with pytest.raises(ValueError):
            CroesusConfig(operations_per_transaction=1)

    def test_with_thresholds_returns_new_config(self):
        base = CroesusConfig()
        updated = base.with_thresholds(0.1, 0.9)
        assert updated.thresholds == (0.1, 0.9)
        assert base.thresholds != updated.thresholds

    def test_with_topology(self):
        topology = EdgeCloudTopology.small_edge_same_location()
        config = CroesusConfig().with_topology(topology)
        assert config.topology is topology

    def test_with_cloud_profile(self):
        config = CroesusConfig().with_cloud_profile(CLOUD_YOLOV3_608)
        assert config.cloud_profile is CLOUD_YOLOV3_608

    def test_with_consistency(self):
        config = CroesusConfig().with_consistency(ConsistencyLevel.MS_SR)
        assert config.consistency is ConsistencyLevel.MS_SR
