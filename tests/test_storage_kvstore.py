"""Tests for the versioned key-value store."""

import pytest

from repro.storage.kvstore import KeyNotFound, KeyValueStore


class TestKeyValueStore:
    def test_read_missing_key_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.read("missing")

    def test_read_missing_key_with_default(self, store):
        assert store.read("missing", default=42) == 42

    def test_write_then_read(self, store):
        store.write("k", "value")
        assert store.read("k") == "value"

    def test_latest_version_wins(self, store):
        store.write("k", 1)
        store.write("k", 2)
        assert store.read("k") == 2

    def test_history_preserves_all_versions(self, store):
        store.write("k", 1, writer="t1")
        store.write("k", 2, writer="t2")
        history = store.history("k")
        assert [v.value for v in history] == [1, 2]
        assert [v.writer for v in history] == ["t1", "t2"]

    def test_sequence_numbers_increase(self, store):
        v1 = store.write("a", 1)
        v2 = store.write("b", 2)
        assert v2.sequence > v1.sequence

    def test_read_version_by_index(self, store):
        store.write("k", "old")
        store.write("k", "new")
        assert store.read_version("k", 0).value == "old"
        assert store.read_version("k").value == "new"

    def test_read_version_missing_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.read_version("missing")

    def test_delete_is_tombstone(self, store):
        store.write("k", 1)
        store.delete("k")
        assert store.read("k") is None
        assert not store.exists("k")
        assert "k" in store

    def test_exists(self, store):
        assert not store.exists("k")
        store.write("k", 0)
        assert store.exists("k")

    def test_snapshot_excludes_tombstones(self, store):
        store.write("a", 1)
        store.write("b", 2)
        store.delete("b")
        assert store.snapshot() == {"a": 1}

    def test_keys_iteration(self, store):
        store.write("a", 1)
        store.write("b", 2)
        assert set(store.keys()) == {"a", "b"}
        assert len(store) == 2

    def test_rollback_writer_restores_prior_value(self, store):
        store.write("k", "original", writer="setup")
        store.write("k", "changed", writer="t1")
        assert store.rollback_writer("k", "t1") is True
        assert store.read("k") == "original"

    def test_rollback_writer_to_none_when_first_writer(self, store):
        store.write("k", "v", writer="t1")
        store.rollback_writer("k", "t1")
        assert store.read("k") is None

    def test_rollback_unknown_writer_is_noop(self, store):
        store.write("k", 1, writer="t1")
        assert store.rollback_writer("k", "t2") is False
        assert store.read("k") == 1

    def test_rollback_missing_key_is_noop(self, store):
        assert store.rollback_writer("missing", "t1") is False
