"""Integration tests for edge-model feedback inside the Croesus pipeline."""

import pytest

from repro.core.config import CroesusConfig
from repro.core.system import CroesusSystem
from repro.video.library import make_video


class TestFeedbackIntegration:
    def test_feedback_disabled_by_default(self):
        system = CroesusSystem(CroesusConfig(seed=4))
        assert system.edge.feedback is None
        assert system.edge.smoother is None

    def test_with_feedback_builds_components(self):
        config = CroesusConfig(seed=4).with_feedback()
        system = CroesusSystem(config)
        assert system.edge.feedback is not None
        assert system.edge.smoother is not None

    def test_feedback_accumulates_cloud_verdicts(self):
        config = CroesusConfig(seed=4, lower_threshold=0.0, upper_threshold=0.999).with_feedback()
        system = CroesusSystem(config)
        system.run(make_video("v1", num_frames=30, seed=4))
        memory = system.edge.feedback
        observed = sum(
            memory.stats_for(name).observations
            for name in ("dog", "person", "cat")
        )
        assert observed > 0

    def test_smoother_tracks_objects(self):
        config = CroesusConfig(seed=4).with_feedback()
        system = CroesusSystem(config)
        system.run(make_video("v1", num_frames=30, seed=4))
        assert system.edge.smoother.tracked_objects() > 0

    def test_run_with_feedback_produces_comparable_accuracy(self):
        """Feedback is a refinement: it must not wreck the pipeline's accuracy."""
        base_config = CroesusConfig(seed=4, lower_threshold=0.3, upper_threshold=0.7)
        without = CroesusSystem(base_config).run(make_video("v1", num_frames=40, seed=4))
        with_feedback = CroesusSystem(base_config.with_feedback()).run(
            make_video("v1", num_frames=40, seed=4)
        )
        assert with_feedback.f_score >= without.f_score - 0.1

    def test_feedback_flag_is_copy_on_write(self):
        base = CroesusConfig(seed=4)
        enabled = base.with_feedback()
        assert not base.enable_feedback
        assert enabled.enable_feedback
        assert enabled.with_feedback(False).enable_feedback is False
