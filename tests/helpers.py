"""Shared object factories for the Croesus test suite.

Kept in a uniquely named module (not ``conftest``) so test files can
import the factories without clashing with ``benchmarks/conftest.py``
when both directories are collected in one pytest invocation.
"""

from __future__ import annotations

from repro.detection.geometry import BoundingBox
from repro.detection.labels import Detection, LabelSet
from repro.video.frames import Frame
from repro.video.scene import SceneObject


def make_detection(
    name: str = "person",
    confidence: float = 0.8,
    x: float = 100.0,
    y: float = 100.0,
    size: float = 50.0,
    object_id: int | None = None,
) -> Detection:
    """Build a detection with a square box at (x, y)."""
    return Detection(
        name=name,
        confidence=confidence,
        box=BoundingBox(x, y, x + size, y + size),
        object_id=object_id,
    )


def make_label_set(frame_id: int, *detections: Detection, model: str = "test") -> LabelSet:
    """Build a label set from detections."""
    return LabelSet(frame_id=frame_id, detections=tuple(detections), model_name=model)


def make_scene_object(
    object_id: int = 0,
    name: str = "person",
    x: float = 100.0,
    y: float = 100.0,
    size: float = 80.0,
    visibility: float = 1.0,
    difficulty: float = 1.0,
) -> SceneObject:
    """Build a ground-truth object with a square box."""
    return SceneObject(
        object_id=object_id,
        name=name,
        box=BoundingBox(x, y, x + size, y + size),
        visibility=visibility,
        difficulty=difficulty,
        confusable_name="other",
    )


def make_frame(frame_id: int = 0, *objects: SceneObject, query: str = "person") -> Frame:
    """Build a frame containing the given ground-truth objects."""
    return Frame(
        frame_id=frame_id,
        width=1280.0,
        height=720.0,
        objects=tuple(objects),
        query_class=query,
    )
