"""Tests for the lock manager."""

from repro.storage.locks import LockManager, LockMode


class TestLockManager:
    def test_exclusive_lock_granted_when_free(self):
        locks = LockManager()
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.holds("t1", "x")

    def test_exclusive_conflicts_with_exclusive(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_shared_locks_are_compatible(self):
        locks = LockManager()
        assert locks.try_acquire("t1", "x", LockMode.SHARED)
        assert locks.try_acquire("t2", "x", LockMode.SHARED)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.SHARED)
        assert not locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert not locks.try_acquire("t2", "x", LockMode.SHARED)

    def test_reacquire_is_idempotent(self):
        locks = LockManager()
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        assert locks.try_acquire("t1", "x", LockMode.SHARED)

    def test_upgrade_shared_to_exclusive_when_sole_holder(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.SHARED)
        assert locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)

    def test_upgrade_denied_with_other_sharers(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.SHARED)
        locks.try_acquire("t2", "x", LockMode.SHARED)
        assert not locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)

    def test_release_frees_lock(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.release("t1", "x")
        assert locks.try_acquire("t2", "x", LockMode.EXCLUSIVE)

    def test_release_unheld_lock_is_noop(self):
        locks = LockManager()
        locks.release("t1", "x")  # must not raise

    def test_release_all(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.try_acquire("t1", "y", LockMode.SHARED)
        locks.release_all("t1")
        assert locks.held_keys("t1") == frozenset()
        assert locks.locked_keys() == frozenset()

    def test_acquire_all_atomicity(self):
        """If any lock in the group is denied, none are retained."""
        locks = LockManager()
        locks.try_acquire("other", "y", LockMode.EXCLUSIVE)
        granted = locks.acquire_all(
            "t1", [("x", LockMode.EXCLUSIVE), ("y", LockMode.EXCLUSIVE)]
        )
        assert not granted
        assert not locks.holds("t1", "x")
        assert not locks.holds("t1", "y")

    def test_acquire_all_success(self):
        locks = LockManager()
        assert locks.acquire_all("t1", [("x", LockMode.SHARED), ("y", LockMode.EXCLUSIVE)])
        assert locks.held_keys("t1") == {"x", "y"}

    def test_acquire_all_keeps_previously_held_locks_on_failure(self):
        """A failed group acquisition must not drop locks held before the call."""
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE)
        locks.try_acquire("other", "y", LockMode.EXCLUSIVE)
        granted = locks.acquire_all(
            "t1", [("x", LockMode.EXCLUSIVE), ("y", LockMode.EXCLUSIVE)]
        )
        assert not granted
        assert locks.holds("t1", "x")

    def test_hold_records_measure_duration(self):
        locks = LockManager()
        locks.try_acquire("t1", "x", LockMode.EXCLUSIVE, now=1.0)
        locks.release("t1", "x", now=3.5)
        records = locks.hold_records
        assert len(records) == 1
        assert records[0].duration == 2.5
        assert locks.average_hold_time() == 2.5

    def test_average_hold_time_empty(self):
        assert LockManager().average_hold_time() == 0.0
