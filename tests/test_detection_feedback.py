"""Tests for edge-model feedback (correction memory and temporal smoothing)."""

import pytest

from repro.detection.feedback import CorrectionMemory, TemporalSmoother
from repro.detection.matching import match_labels

from helpers import make_detection, make_label_set


def _report(edge_name: str, cloud_name: str | None):
    """A one-detection match report: edge label vs cloud verdict."""
    edge = make_label_set(0, make_detection(edge_name, x=100))
    if cloud_name is None:
        cloud = make_label_set(0)
    else:
        cloud = make_label_set(0, make_detection(cloud_name, x=100))
    return match_labels(edge, cloud)


class TestCorrectionMemory:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            CorrectionMemory(min_observations=0)
        with pytest.raises(ValueError):
            CorrectionMemory(substitution_threshold=0.0)

    def test_reliability_defaults_to_one_before_observations(self):
        memory = CorrectionMemory(min_observations=3)
        assert memory.reliability("dog") == 1.0

    def test_confirmations_keep_reliability_high(self):
        memory = CorrectionMemory(min_observations=3)
        for _ in range(5):
            memory.observe(_report("dog", "dog"))
        assert memory.reliability("dog") == 1.0

    def test_corrections_lower_reliability(self):
        memory = CorrectionMemory(min_observations=3)
        for _ in range(4):
            memory.observe(_report("dog", "cat"))
        assert memory.reliability("dog") == 0.0
        assert memory.stats_for("dog").most_common_correction() == "cat"

    def test_spurious_detections_counted(self):
        memory = CorrectionMemory(min_observations=2)
        for _ in range(3):
            memory.observe(_report("dog", None))
        stats = memory.stats_for("dog")
        assert stats.spurious == 3
        assert memory.reliability("dog") == 0.0

    def test_adjust_lowers_confidence_of_unreliable_class(self):
        memory = CorrectionMemory(min_observations=2, substitution_threshold=0.99)
        for _ in range(4):
            memory.observe(_report("dog", None))
        labels = make_label_set(1, make_detection("dog", confidence=0.8))
        adjusted = memory.adjust(labels)
        assert adjusted.detections[0].confidence < 0.8

    def test_adjust_substitutes_consistently_corrected_class(self):
        memory = CorrectionMemory(min_observations=3, substitution_threshold=0.6)
        for _ in range(5):
            memory.observe(_report("dog", "cat"))
        labels = make_label_set(1, make_detection("dog", confidence=0.7))
        adjusted = memory.adjust(labels)
        assert adjusted.detections[0].name == "cat"

    def test_adjust_leaves_unknown_classes_untouched(self):
        memory = CorrectionMemory()
        labels = make_label_set(1, make_detection("zebra", confidence=0.66))
        adjusted = memory.adjust(labels)
        assert adjusted.detections[0] == labels.detections[0]

    def test_adjust_preserves_frame_metadata(self):
        memory = CorrectionMemory()
        labels = make_label_set(7, make_detection("dog"))
        adjusted = memory.adjust(labels)
        assert adjusted.frame_id == 7
        assert adjusted.model_name == labels.model_name


class TestTemporalSmoother:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            TemporalSmoother(window=0)

    def test_single_flicker_is_suppressed(self):
        smoother = TemporalSmoother(window=5)
        for _ in range(3):
            smoother.smooth(make_label_set(0, make_detection("dog", object_id=1)))
        flickered = smoother.smooth(make_label_set(3, make_detection("cat", object_id=1)))
        assert flickered.detections[0].name == "dog"

    def test_persistent_change_eventually_wins(self):
        smoother = TemporalSmoother(window=3)
        smoother.smooth(make_label_set(0, make_detection("dog", object_id=1)))
        for frame in range(1, 4):
            result = smoother.smooth(make_label_set(frame, make_detection("cat", object_id=1)))
        assert result.detections[0].name == "cat"

    def test_untracked_detections_pass_through(self):
        smoother = TemporalSmoother()
        labels = make_label_set(0, make_detection("dog", object_id=None))
        assert smoother.smooth(labels).detections[0].name == "dog"

    def test_objects_tracked_independently(self):
        smoother = TemporalSmoother(window=5)
        smoother.smooth(
            make_label_set(
                0,
                make_detection("dog", object_id=1, x=100),
                make_detection("cat", object_id=2, x=400),
            )
        )
        result = smoother.smooth(
            make_label_set(
                1,
                make_detection("dog", object_id=1, x=100),
                make_detection("cat", object_id=2, x=400),
            )
        )
        assert [d.name for d in result] == ["dog", "cat"]
        assert smoother.tracked_objects() == 2
