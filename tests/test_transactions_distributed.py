"""Tests for multi-partition multi-stage transactions (paper §4.5)."""

import pytest

from repro.storage.locks import LockMode
from repro.storage.partition import PartitionedStore
from repro.transactions.distributed import (
    DistributedMSIAController,
    DistributedTwoStage2PL,
)
from repro.transactions.exceptions import SectionOrderError, TransactionAborted
from repro.transactions.model import MultiStageTransaction, SectionSpec, TransactionStatus
from repro.transactions.ops import ReadWriteSet


def _spanning_keys(store: PartitionedStore, count: int) -> list[str]:
    """Pick keys that land on at least two different partitions."""
    keys: list[str] = []
    seen_partitions: set[int] = set()
    index = 0
    while len(keys) < count:
        key = f"key-{index}"
        partition = store.partition_for(key).partition_id
        if partition not in seen_partitions or len(seen_partitions) > 1:
            keys.append(key)
            seen_partitions.add(partition)
        index += 1
    return keys


def _transfer_transaction(txn_id: str, source: str, target: str) -> MultiStageTransaction:
    def initial(ctx):
        balance = ctx.read(source, default=100) or 100
        ctx.write(source, balance - 10)
        ctx.write(target, (ctx.read(target, default=0) or 0) + 10)
        return balance

    def final(ctx):
        corrected_target = ctx.labels if isinstance(ctx.labels, str) else target
        if corrected_target != target:
            ctx.write(target, (ctx.read(target, default=0) or 0) - 10)
            ctx.write(corrected_target, (ctx.read(corrected_target, default=0) or 0) + 10)
            ctx.apologize(f"moved 10 from {target} to {corrected_target}")

    keys = frozenset({source, target})
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(body=initial, rwset=ReadWriteSet(reads=keys, writes=keys)),
        final=SectionSpec(
            body=final,
            rwset=ReadWriteSet(reads=keys | {"key-extra"}, writes=keys | {"key-extra"}),
        ),
    )


@pytest.fixture
def partitioned_store() -> PartitionedStore:
    return PartitionedStore(num_partitions=4)


class TestDistributedMSIA:
    def test_full_lifecycle_spanning_partitions(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedMSIAController(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        controller.process_initial(txn)
        assert txn.status is TransactionStatus.INITIAL_COMMITTED
        assert partitioned_store.read(source) == 90
        controller.process_final(txn, labels=target)
        assert txn.is_committed
        assert partitioned_store.read(target) == 10

    def test_two_phase_commit_round_per_section(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedMSIAController(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        controller.process_initial(txn)
        controller.process_final(txn, labels=target)
        record = controller.commit_records["t1"]
        assert len(record.rounds) == 2  # one atomic commit per section
        assert len(record.partitions_touched) >= 1

    def test_final_section_correction_across_partitions(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedMSIAController(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        controller.process_initial(txn)
        controller.process_final(txn, labels="key-extra")
        assert partitioned_store.read(target) == 0
        assert partitioned_store.read("key-extra") == 10
        assert txn.apologies

    def test_remote_lock_denial_aborts_initial(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        # Another holder locks the remote key.
        partition = partitioned_store.partition_for(target)
        partition.locks.try_acquire("other", target, LockMode.EXCLUSIVE)

        controller = DistributedMSIAController(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        with pytest.raises(TransactionAborted):
            controller.process_initial(txn)
        assert txn.is_aborted
        # No partial writes anywhere.
        assert partitioned_store.read(source, default=None) is None

    def test_locks_released_after_each_section(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedMSIAController(partitioned_store)
        first = _transfer_transaction("t1", source, target)
        second = _transfer_transaction("t2", source, target)
        controller.process_initial(first)
        # A conflicting transaction can run between t1's sections.
        controller.process_initial(second)
        controller.process_final(second, labels=target)
        controller.process_final(first, labels=target)
        assert first.is_committed and second.is_committed
        assert partitioned_store.read(source) == 80

    def test_final_without_initial_rejected(self, partitioned_store):
        controller = DistributedMSIAController(partitioned_store)
        txn = _transfer_transaction("t1", "a", "b")
        with pytest.raises(SectionOrderError):
            controller.process_final(txn)

    def test_read_your_own_writes_within_section(self, partitioned_store):
        def initial(ctx):
            ctx.write("x", 5)
            return ctx.read("x")

        txn = MultiStageTransaction(
            transaction_id="t1",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"x"}))),
            final=SectionSpec.noop(),
        )
        controller = DistributedMSIAController(partitioned_store)
        assert controller.process_initial(txn) == 5


class TestDistributedTwoStage2PL:
    def test_full_lifecycle(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedTwoStage2PL(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        controller.process_initial(txn)
        # MS-SR defers the atomic commit: nothing visible before the final commit.
        assert partitioned_store.read(source, default=None) is None
        controller.process_final(txn, labels=target)
        assert txn.is_committed
        assert partitioned_store.read(source) == 90
        assert partitioned_store.read(target) == 10

    def test_single_atomic_commit_round(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedTwoStage2PL(partitioned_store)
        txn = _transfer_transaction("t1", source, target)
        controller.process_initial(txn)
        controller.process_final(txn, labels=target)
        record = controller.commit_records["t1"]
        assert len(record.rounds) == 1  # 2PC only at the end of the final section

    def test_conflicting_transaction_aborts_while_locks_held(self, partitioned_store):
        source, target = _spanning_keys(partitioned_store, 2)
        controller = DistributedTwoStage2PL(partitioned_store)
        first = _transfer_transaction("t1", source, target)
        second = _transfer_transaction("t2", source, target)
        controller.process_initial(first)
        with pytest.raises(TransactionAborted):
            controller.process_initial(second)
        assert second.is_aborted
        controller.process_final(first, labels=target)
        assert first.is_committed

    def test_final_section_sees_initial_writes(self, partitioned_store):
        observed = {}

        def initial(ctx):
            ctx.write("x", "from-initial")

        def final(ctx):
            observed["value"] = ctx.read("x")

        txn = MultiStageTransaction(
            transaction_id="t1",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"x"}))),
            final=SectionSpec(body=final, rwset=ReadWriteSet(reads=frozenset({"x"}))),
        )
        controller = DistributedTwoStage2PL(partitioned_store)
        controller.process_initial(txn)
        controller.process_final(txn)
        assert observed["value"] == "from-initial"
