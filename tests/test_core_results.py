"""Tests for latency breakdowns and run results."""

import pytest

from repro.core.results import FrameTrace, LatencyBreakdown, RunResult
from repro.detection.metrics import AccuracyReport

from helpers import make_label_set


def _trace(frame_id: int, sent: bool, f_tp: int = 1, f_fp: int = 0, f_fn: int = 0) -> FrameTrace:
    latency = LatencyBreakdown(
        edge_transfer=0.01,
        edge_detection=0.2,
        initial_txn=0.001,
        cloud_transfer=0.05 if sent else 0.0,
        cloud_detection=1.0 if sent else 0.0,
        final_txn=0.001,
    )
    return FrameTrace(
        frame_id=frame_id,
        edge_labels=make_label_set(frame_id),
        cloud_labels=make_label_set(frame_id),
        observed_labels=make_label_set(frame_id),
        sent_to_cloud=sent,
        latency=latency,
        accuracy=AccuracyReport(f_tp, f_fp, f_fn),
        transactions_triggered=2,
        corrections=1 if sent else 0,
        apologies=1 if sent else 0,
        frame_bytes_sent=250_000 if sent else 0,
    )


class TestLatencyBreakdown:
    def test_initial_latency_components(self):
        breakdown = LatencyBreakdown(edge_transfer=0.01, edge_detection=0.2, initial_txn=0.002)
        assert breakdown.initial_latency == pytest.approx(0.212)

    def test_final_latency_includes_cloud(self):
        breakdown = LatencyBreakdown(
            edge_transfer=0.01,
            edge_detection=0.2,
            initial_txn=0.002,
            cloud_transfer=0.06,
            cloud_detection=1.1,
            final_txn=0.001,
        )
        assert breakdown.final_latency == pytest.approx(1.373)
        assert breakdown.cloud_total == pytest.approx(1.16)

    def test_average(self):
        a = LatencyBreakdown(edge_detection=0.2)
        b = LatencyBreakdown(edge_detection=0.4)
        assert LatencyBreakdown.average([a, b]).edge_detection == pytest.approx(0.3)

    def test_average_of_empty_list(self):
        assert LatencyBreakdown.average([]).final_latency == 0.0

    def test_scaled(self):
        breakdown = LatencyBreakdown(edge_detection=0.2, cloud_detection=1.0)
        scaled = breakdown.scaled(2.0)
        assert scaled.edge_detection == pytest.approx(0.4)
        assert scaled.cloud_detection == pytest.approx(2.0)


class TestRunResult:
    def test_bandwidth_utilization(self):
        run = RunResult("croesus", "v1", [_trace(0, True), _trace(1, False), _trace(2, False)])
        assert run.bandwidth_utilization == pytest.approx(1 / 3)

    def test_empty_run(self):
        run = RunResult("croesus", "v1")
        assert run.bandwidth_utilization == 0.0
        assert run.f_score == 0.0
        assert run.average_initial_latency == 0.0
        assert run.average_final_latency == 0.0

    def test_accuracy_aggregates_frames(self):
        run = RunResult(
            "croesus", "v1", [_trace(0, True, f_tp=1, f_fp=1), _trace(1, False, f_tp=1, f_fn=1)]
        )
        accuracy = run.accuracy
        assert accuracy.true_positives == 2
        assert accuracy.false_positives == 1
        assert accuracy.false_negatives == 1

    def test_latency_averages(self):
        run = RunResult("croesus", "v1", [_trace(0, True), _trace(1, False)])
        assert run.average_initial_latency == pytest.approx(0.211)
        # one frame pays the cloud round trip, the other does not
        assert run.average_final_latency == pytest.approx((1.262 + 0.212) / 2)

    def test_counters(self):
        run = RunResult("croesus", "v1", [_trace(0, True), _trace(1, False)])
        assert run.total_transactions == 4
        assert run.total_corrections == 1
        assert run.total_apologies == 1
        assert run.bytes_sent_to_cloud == 250_000

    def test_summary_keys(self):
        run = RunResult("croesus", "v1", [_trace(0, True)])
        summary = run.summary()
        assert {"frames", "bandwidth_utilization", "f_score", "initial_latency_ms", "final_latency_ms"} <= set(summary)

    def test_add_appends_trace(self):
        run = RunResult("croesus", "v1")
        run.add(_trace(0, False))
        assert run.num_frames == 1


class TestCloudQueueDelay:
    def test_final_latency_includes_cloud_queue_delay(self):
        plain = LatencyBreakdown(cloud_transfer=0.5, cloud_detection=0.4)
        queued = LatencyBreakdown(cloud_transfer=0.5, cloud_detection=0.4, cloud_queue_delay=0.3)
        assert queued.final_latency == pytest.approx(plain.final_latency + 0.3)
        assert queued.cloud_total == pytest.approx(1.2)
        assert queued.initial_latency == plain.initial_latency

    def test_scaled_and_average_carry_cloud_queue_delay(self):
        breakdown = LatencyBreakdown(cloud_queue_delay=0.4)
        assert breakdown.scaled(2.0).cloud_queue_delay == pytest.approx(0.8)
        averaged = LatencyBreakdown.average(
            [LatencyBreakdown(cloud_queue_delay=0.2), LatencyBreakdown(cloud_queue_delay=0.6)]
        )
        assert averaged.cloud_queue_delay == pytest.approx(0.4)
