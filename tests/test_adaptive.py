"""Tests for online per-stream threshold adaptation (core/adaptive.py)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    ADAPTATION_MODES,
    AdaptationConfig,
    AdaptationManager,
    MAX_THRESHOLD,
)
from repro.core.results import FrameTrace, LatencyBreakdown
from repro.core.thresholds import ThresholdPolicy
from repro.detection.geometry import BoundingBox
from repro.detection.labels import Detection, LabelSet
from repro.detection.metrics import AccuracyReport
from repro.experiments import get_scenario, run as run_scenario


def _manager(mode: str = "feedback", **overrides) -> AdaptationManager:
    config = AdaptationConfig(mode=mode, **overrides)
    return AdaptationManager(config, ThresholdPolicy(0.3, 0.7))


def _trace(frame_id: int, confidences: tuple[float, ...]) -> FrameTrace:
    detections = tuple(
        Detection("object", confidence, BoundingBox(i * 20.0, 0.0, i * 20.0 + 10.0, 10.0), i)
        for i, confidence in enumerate(confidences)
    )
    labels = LabelSet(frame_id, detections, "edge")
    return FrameTrace(
        frame_id=frame_id,
        edge_labels=labels,
        cloud_labels=labels,
        observed_labels=labels,
        sent_to_cloud=True,
        latency=LatencyBreakdown(edge_detection=0.01, cloud_detection=0.05),
        accuracy=AccuracyReport(len(detections), 0, 0),
    )


class TestAdaptationConfig:
    def test_accepts_every_registered_mode(self):
        for mode in ADAPTATION_MODES:
            assert AdaptationConfig(mode=mode).mode == mode

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "nope"},
            {"mode": "feedback", "interval_s": 0.0},
            {"mode": "feedback", "interval_s": -1.0},
            {"mode": "feedback", "target_f": 0.0},
            {"mode": "feedback", "target_f": 1.5},
            {"mode": "retune", "step": 0.0},
            {"mode": "retune", "step": 0.6},
            {"mode": "retune", "min_samples": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AdaptationConfig(**kwargs)


class TestFeedbackController:
    def test_streams_start_on_the_static_policy(self):
        manager = _manager()
        policy = manager.policy_for("cam0")
        assert (policy.lower, policy.upper) == (0.3, 0.7)

    def test_high_correction_rate_widens_the_band(self):
        manager = _manager(target_f=0.8, step=0.05)
        for _ in range(10):  # every validation came back corrected
            manager.observe_frame("cam0", sent=True, corrections=1)
        (update,) = manager.adapt_all(now=1.0)
        assert (update.lower, update.upper) == (0.25, 0.75)

    def test_blind_window_also_widens(self):
        """No validations at all is treated like an untrusted edge."""
        manager = _manager()
        for _ in range(10):
            manager.observe_frame("cam0", sent=False, corrections=0)
        (update,) = manager.adapt_all(now=1.0)
        assert update.lower < 0.3 and update.upper > 0.7

    def test_clean_validations_narrow_from_the_top(self):
        manager = _manager(target_f=0.8, step=0.05)
        for _ in range(10):  # all validated, none corrected
            manager.observe_frame("cam0", sent=True, corrections=0)
        (update,) = manager.adapt_all(now=1.0)
        assert update.lower == 0.3
        assert update.upper == 0.65

    def test_moderate_correction_rate_holds_in_the_deadband(self):
        """Rate between 0.5*slack and slack: no move, no update."""
        manager = _manager(target_f=0.8)  # slack 0.2, deadband (0.1, 0.2]
        for i in range(20):
            manager.observe_frame("cam0", sent=True, corrections=1 if i < 3 else 0)
        assert manager.adapt_all(now=1.0) == []
        assert manager.threshold_updates == 0

    def test_empty_window_is_a_no_op(self):
        manager = _manager()
        manager.policy_for("cam0")  # controller exists, saw no frames
        assert manager.adapt_all(now=1.0) == []

    def test_thresholds_stay_clamped(self):
        manager = _manager(step=0.5)
        for tick in range(4):  # widen past both rails
            for _ in range(5):
                manager.observe_frame("cam0", sent=True, corrections=1)
            manager.adapt_all(now=float(tick))
        lower, upper = manager.final_thresholds()["cam0"]
        assert lower == 0.0
        assert upper == MAX_THRESHOLD

    def test_streams_adapt_independently(self):
        manager = _manager(target_f=0.8)
        for _ in range(10):
            manager.observe_frame("noisy", sent=True, corrections=1)
            manager.observe_frame("clean", sent=True, corrections=0)
        updates = manager.adapt_all(now=1.0)
        assert {update.stream for update in updates} == {"noisy", "clean"}
        final = manager.final_thresholds()
        assert final["noisy"][1] > 0.7  # widened
        assert final["clean"][1] < 0.7  # narrowed

    def test_feedback_mode_does_no_tuner_work(self):
        manager = _manager()
        for _ in range(10):
            manager.observe_frame("cam0", sent=True, corrections=1)
        manager.adapt_all(now=1.0)
        assert manager.tuner_evaluations == 0
        assert manager.tuner_frame_rescores == 0
        assert not manager.wants_traces


class TestRetuneController:
    def test_waits_for_min_samples(self):
        manager = _manager("retune", min_samples=6)
        assert manager.wants_traces
        for i in range(5):
            manager.observe_frame("cam0", sent=True, corrections=0, trace=_trace(i, (0.5,)))
        assert manager.adapt_all(now=1.0) == []
        assert manager.tuner_evaluations == 0

    def test_retunes_once_evidence_accumulates(self):
        manager = _manager("retune", min_samples=4, target_f=0.8)
        for i in range(6):
            manager.observe_frame(
                "cam0", sent=True, corrections=0, trace=_trace(i, (0.3, 0.5, 0.9))
            )
        manager.adapt_all(now=1.0)
        assert manager.tuner_evaluations > 0
        assert manager.tuner_frame_rescores > 0
        # The incremental tuner must beat the grid's evaluations x frames.
        assert manager.tuner_frame_rescores < manager.tuner_grid_rescores

    def test_no_new_frames_means_no_retune(self):
        """Re-running the search on unchanged history is skipped."""
        manager = _manager("retune", min_samples=2)
        for i in range(4):
            manager.observe_frame("cam0", sent=True, corrections=0, trace=_trace(i, (0.5,)))
        manager.adapt_all(now=1.0)
        evaluations = manager.tuner_evaluations
        assert evaluations > 0
        manager.adapt_all(now=2.0)  # nothing observed since the last tick
        assert manager.tuner_evaluations == evaluations

    def test_unsent_frames_do_not_feed_the_scorer(self):
        """Only validated frames carry cloud labels the edge can learn from."""
        manager = _manager("retune", min_samples=2)
        for i in range(10):
            manager.observe_frame("cam0", sent=False, corrections=0)
        assert manager.adapt_all(now=1.0) == []
        assert manager.tuner_evaluations == 0


class TestAdaptiveScenario:
    """End-to-end determinism of the registered adaptive scenario."""

    def test_adaptive_thresholds_run_is_deterministic(self):
        first = run_scenario(get_scenario("adaptive-thresholds"))
        second = run_scenario(get_scenario("adaptive-thresholds"))
        assert first.to_dict() == second.to_dict()

    def test_adaptive_run_reports_the_loop_closure(self):
        report = run_scenario(get_scenario("adaptive-thresholds"))
        assert report.threshold_updates > 0
        assert report.adaptation is not None
        assert report.adaptation["mode"] == "retune"
        assert len(report.adaptation["stream_thresholds"]) == report.scenario["streams"]
        # The artifact-gated bound: incremental rescores >= 10x under grid cost.
        assert report.tuner_frame_rescores * 10 <= report.adaptation["tuner_grid_rescores"]

    def test_static_run_reports_no_adaptation(self):
        spec = get_scenario("adaptive-thresholds").with_(threshold_adaptation=None)
        report = run_scenario(spec)
        assert report.threshold_updates == 0
        assert report.tuner_evaluations == 0
        assert report.adaptation is None
