"""Tests for the event log."""

from repro.sim.events import Event, EventLog


class TestEventLog:
    def test_record_returns_event(self):
        log = EventLog()
        event = log.record(1.0, "detected", frame_id=3)
        assert isinstance(event, Event)
        assert event.timestamp == 1.0
        assert event.kind == "detected"
        assert event.payload == {"frame_id": 3}

    def test_events_preserve_order(self):
        log = EventLog()
        log.record(1.0, "a")
        log.record(0.5, "b")
        kinds = [event.kind for event in log]
        assert kinds == ["a", "b"]

    def test_of_kind_filters(self):
        log = EventLog()
        log.record(0.0, "commit", txn="t1")
        log.record(1.0, "abort", txn="t2")
        log.record(2.0, "commit", txn="t3")
        commits = log.of_kind("commit")
        assert len(commits) == 2
        assert {event.payload["txn"] for event in commits} == {"t1", "t3"}

    def test_kinds_returns_distinct(self):
        log = EventLog()
        log.record(0.0, "x")
        log.record(0.0, "x")
        log.record(0.0, "y")
        assert log.kinds() == {"x", "y"}

    def test_len_and_clear(self):
        log = EventLog()
        log.record(0.0, "x")
        log.record(0.0, "y")
        assert len(log) == 2
        log.clear()
        assert len(log) == 0
