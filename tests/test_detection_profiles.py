"""Tests for model profiles."""

import pytest

from repro.detection.profiles import (
    CLOUD_PROFILES,
    CLOUD_YOLOV3_320,
    CLOUD_YOLOV3_416,
    CLOUD_YOLOV3_608,
    EDGE_TINY_YOLOV3,
    ModelProfile,
)


class TestModelProfilePresets:
    def test_edge_model_is_fastest(self):
        assert EDGE_TINY_YOLOV3.inference_latency < CLOUD_YOLOV3_320.inference_latency

    def test_cloud_models_ordered_by_latency(self):
        assert (
            CLOUD_YOLOV3_320.inference_latency
            < CLOUD_YOLOV3_416.inference_latency
            < CLOUD_YOLOV3_608.inference_latency
        )

    def test_cloud_models_ordered_by_recall(self):
        assert (
            CLOUD_YOLOV3_320.recall
            <= CLOUD_YOLOV3_416.recall
            <= CLOUD_YOLOV3_608.recall
        )

    def test_edge_model_is_least_accurate(self):
        assert EDGE_TINY_YOLOV3.recall < CLOUD_YOLOV3_320.recall
        assert EDGE_TINY_YOLOV3.mislabel_rate > CLOUD_YOLOV3_416.mislabel_rate

    def test_cloud_profiles_lookup(self):
        assert set(CLOUD_PROFILES) == {"yolov3-320", "yolov3-416", "yolov3-608"}
        assert CLOUD_PROFILES["yolov3-608"] is CLOUD_YOLOV3_608


class TestModelProfileValidation:
    def _base_kwargs(self) -> dict:
        return dict(
            name="m",
            recall=0.8,
            mislabel_rate=0.1,
            false_positive_rate=0.1,
            box_noise=0.05,
            confidence_correct=0.8,
            confidence_error=0.4,
            confidence_spread=0.1,
            inference_latency=0.1,
            latency_jitter=0.01,
        )

    def test_recall_out_of_range_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["recall"] = 1.2
        with pytest.raises(ValueError):
            ModelProfile(**kwargs)

    def test_negative_latency_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["inference_latency"] = -0.1
        with pytest.raises(ValueError):
            ModelProfile(**kwargs)

    def test_negative_false_positive_rate_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["false_positive_rate"] = -1
        with pytest.raises(ValueError):
            ModelProfile(**kwargs)

    def test_scaled_latency(self):
        profile = ModelProfile(**self._base_kwargs())
        scaled = profile.scaled_latency(2.0)
        assert scaled.inference_latency == pytest.approx(0.2)
        assert scaled.latency_jitter == pytest.approx(0.02)
        assert scaled.recall == profile.recall

    def test_scaled_latency_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ModelProfile(**self._base_kwargs()).scaled_latency(0)

    def test_with_name(self):
        assert ModelProfile(**self._base_kwargs()).with_name("renamed").name == "renamed"
