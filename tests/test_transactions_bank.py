"""Tests for the transactions bank."""

from repro.transactions.bank import ANY_LABEL, TransactionBank
from repro.transactions.model import MultiStageTransaction, SectionSpec

from helpers import make_detection


def _factory(detection, txn_id) -> MultiStageTransaction:
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec.noop(),
        final=SectionSpec.noop(),
        trigger=detection.name if detection is not None else "input",
    )


class TestTransactionBank:
    def test_label_class_rule_fires_per_matching_detection(self):
        bank = TransactionBank()
        bank.register("buildings", {"Engineering", "Library"}, _factory)
        detections = [
            make_detection("Engineering"),
            make_detection("University Shuttle 42"),
            make_detection("Library"),
        ]
        triggered = bank.transactions_for(detections)
        assert len(triggered) == 2
        assert {txn.trigger for txn, _ in triggered} == {"Engineering", "Library"}

    def test_wildcard_rule_fires_for_every_detection(self):
        bank = TransactionBank()
        bank.register("any", ANY_LABEL, _factory)
        detections = [make_detection("a"), make_detection("b")]
        assert len(bank.transactions_for(detections)) == 2

    def test_wildcard_rule_does_not_fire_without_detections(self):
        bank = TransactionBank()
        bank.register("any", ANY_LABEL, _factory)
        assert bank.transactions_for([]) == []

    def test_auxiliary_input_required(self):
        bank = TransactionBank()
        bank.register("reserve", {"Engineering"}, _factory, requires_auxiliary_input=True)
        detections = [make_detection("Engineering")]
        assert bank.transactions_for(detections, auxiliary_input=False) == []
        assert len(bank.transactions_for(detections, auxiliary_input=True)) == 1

    def test_pure_input_rule_fires_once_per_frame(self):
        bank = TransactionBank()
        bank.register("menu", (), _factory, requires_auxiliary_input=True)
        triggered = bank.transactions_for([make_detection("a")], auxiliary_input=True)
        assert len(triggered) == 1
        assert triggered[0][1] is None  # no triggering detection

    def test_transaction_ids_are_unique(self):
        bank = TransactionBank()
        bank.register("any", ANY_LABEL, _factory)
        triggered = bank.transactions_for([make_detection("a"), make_detection("b")])
        ids = [txn.transaction_id for txn, _ in triggered]
        assert len(set(ids)) == len(ids)

    def test_multiple_rules_can_fire_for_one_detection(self):
        bank = TransactionBank()
        bank.register("info", {"Engineering"}, _factory)
        bank.register("audit", {"Engineering"}, _factory)
        triggered = bank.transactions_for([make_detection("Engineering")])
        assert len(triggered) == 2

    def test_rules_accessor(self):
        bank = TransactionBank()
        rule = bank.register("r", {"x"}, _factory)
        assert bank.rules == (rule,)
