"""Tests for the incremental threshold scorer and coordinate descent.

The contract under test is exactness: ``IncrementalThresholdScorer`` is
a *performance* rewrite of ``ThresholdEvaluator.evaluate`` — every score
it returns must be bit-identical to the evaluator's, and
``coordinate_descent_search`` must land on the same optimum as
``brute_force_search`` (same grid, same tie-breaks) while re-matching
far fewer frames.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CroesusConfig
from repro.core.incremental import IncrementalThresholdScorer, coordinate_descent_search
from repro.core.optimizer import ThresholdEvaluator, brute_force_search
from repro.core.results import FrameTrace, LatencyBreakdown
from repro.detection.geometry import BoundingBox
from repro.detection.labels import Detection, LabelSet
from repro.detection.metrics import AccuracyReport
from repro.experiments import build_single_config, get_scenario


# -- random-trace substrate ---------------------------------------------------
#
# Detections live in disjoint grid slots (one 10x10 box per slot), so
# label matching is decided purely by slot: an edge detection matches a
# cloud detection iff they share a slot.  That keeps the geometry out of
# the way while still exercising every TP/FP/FN combination.

def _slot_box(slot: int) -> BoundingBox:
    left = slot * 20.0
    return BoundingBox(left, 0.0, left + 10.0, 10.0)


def _label_set(frame_id: int, slots_and_confidences, model: str) -> LabelSet:
    detections = tuple(
        Detection("object", confidence, _slot_box(slot), object_id=slot)
        for slot, confidence in slots_and_confidences
    )
    return LabelSet(frame_id, detections, model)


confidences = st.floats(0.0, 1.0, allow_nan=False)

frame_contents = st.tuples(
    st.lists(st.tuples(st.integers(0, 5), confidences), max_size=6),  # edge
    st.lists(st.integers(0, 5), max_size=6),  # cloud slots
    st.floats(0.001, 0.5),  # initial latency component
    st.floats(0.001, 0.5),  # cloud round-trip component
)

trace_lists = st.lists(frame_contents, min_size=1, max_size=12)

threshold_pairs = st.tuples(confidences, confidences).map(
    lambda pair: (min(pair), max(pair))
)


def _build_traces(contents) -> list[FrameTrace]:
    traces = []
    for frame_id, (edge, cloud_slots, edge_s, cloud_s) in enumerate(contents):
        edge_labels = _label_set(frame_id, edge, "edge")
        cloud_labels = _label_set(
            frame_id, [(slot, 0.99) for slot in sorted(set(cloud_slots))], "cloud"
        )
        latency = LatencyBreakdown(
            edge_transfer=edge_s,
            edge_detection=edge_s,
            initial_txn=edge_s / 2,
            cloud_transfer=cloud_s,
            cloud_detection=cloud_s,
            final_txn=cloud_s / 2,
        )
        traces.append(
            FrameTrace(
                frame_id=frame_id,
                edge_labels=edge_labels,
                cloud_labels=cloud_labels,
                observed_labels=edge_labels,
                sent_to_cloud=True,
                latency=latency,
                accuracy=AccuracyReport(0, 0, 0),
            )
        )
    return traces


class TestScorerMatchesEvaluator:
    @given(trace_lists, threshold_pairs)
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_on_random_traces(self, contents, pair):
        """One score, arbitrary trace set: scorer == evaluator, exactly."""
        lower, upper = pair
        evaluator = ThresholdEvaluator(_build_traces(contents))
        scorer = IncrementalThresholdScorer.from_evaluator(evaluator)
        assert scorer.evaluate(lower, upper) == evaluator.evaluate(lower, upper)

    @given(trace_lists, st.lists(threshold_pairs, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_along_threshold_walks(self, contents, walk):
        """A walk re-uses per-frame sufficient statistics; every step must
        still reproduce the evaluator's score bit for bit."""
        evaluator = ThresholdEvaluator(_build_traces(contents))
        scorer = IncrementalThresholdScorer.from_evaluator(evaluator)
        for lower, upper in walk:
            assert scorer.evaluate(lower, upper) == evaluator.evaluate(lower, upper)

    @given(trace_lists, trace_lists, threshold_pairs)
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_after_incremental_adds(self, contents, more, pair):
        """Frames added after scoring started are folded in exactly."""
        lower, upper = pair
        initial = _build_traces(contents)
        evaluator = ThresholdEvaluator(initial)
        scorer = IncrementalThresholdScorer.from_evaluator(evaluator)
        scorer.evaluate(lower, upper)  # warm the per-frame statistics

        added = _build_traces(contents + more)[len(initial):]
        for trace in added:
            scorer.add_frame(trace)
        reference = ThresholdEvaluator(initial + added)
        assert scorer.evaluate(lower, upper) == reference.evaluate(lower, upper)

    def test_profiled_video_scores_match_on_the_full_grid(self):
        """Real profiled traces, every grid pair: still bit-identical."""
        evaluator = ThresholdEvaluator.profile(CroesusConfig(seed=4), "v1", num_frames=40)
        scorer = IncrementalThresholdScorer.from_evaluator(evaluator)
        for reference in evaluator.evaluate_grid(step=0.1):
            assert scorer.evaluate(reference.lower, reference.upper) == reference


# -- coordinate descent vs brute force ----------------------------------------

#: Frames profiled per fig2 video (the scenarios' 80 halved for speed).
PROFILE_FRAMES = 40


@pytest.fixture(scope="module")
def figure_evaluators() -> dict[str, ThresholdEvaluator]:
    """Profiled evaluators of the paper's fig2/table1 videos."""
    evaluators = {}
    for name in ("fig2-v1", "fig2-v2", "fig2-v3", "fig2-v4"):
        spec = get_scenario(name)
        evaluators[name] = ThresholdEvaluator.profile(
            build_single_config(spec), spec.video, num_frames=PROFILE_FRAMES
        )
    return evaluators


class TestCoordinateDescent:
    @pytest.mark.parametrize("name", ["fig2-v1", "fig2-v2", "fig2-v3", "fig2-v4"])
    @pytest.mark.parametrize("target", [0.7, 0.8, 0.9])
    def test_matches_brute_force_optimum_exactly(self, figure_evaluators, name, target):
        """Same grid step -> same optimum, bit for bit (incl. tie-breaks)."""
        evaluator = figure_evaluators[name]
        brute = brute_force_search(evaluator, target_f_score=target, step=0.05)
        descent = coordinate_descent_search(evaluator, target_f_score=target, step=0.05)
        assert descent.best == brute.best
        assert descent.feasible == brute.feasible

    @pytest.mark.parametrize("name", ["fig2-v1", "fig2-v3"])
    def test_ten_times_fewer_frame_rescores_than_the_grid(self, figure_evaluators, name):
        """The ISSUE's perf gate: descent's full-frame label-match work is
        >= 10x below the exhaustive grid's evaluations x frames."""
        evaluator = figure_evaluators[name]
        descent = coordinate_descent_search(evaluator, target_f_score=0.8, step=0.05)
        grid_rescores = descent.evaluations * PROFILE_FRAMES
        assert descent.frame_rescores * 10 <= grid_rescores

    def test_infeasible_target_reports_best_effort(self, figure_evaluators):
        evaluator = figure_evaluators["fig2-v1"]
        brute = brute_force_search(evaluator, target_f_score=1.01, step=0.05)
        descent = coordinate_descent_search(evaluator, target_f_score=1.01, step=0.05)
        assert not descent.feasible
        assert descent.best == brute.best
