"""Tests for the generalized multi-tier pipeline (paper §3.5)."""

import pytest

from repro.core.multi_tier import MultiTierPipeline, TierSpec
from repro.core.thresholds import ThresholdPolicy
from repro.detection.profiles import (
    CLOUD_YOLOV3_320,
    CLOUD_YOLOV3_416,
    EDGE_TINY_YOLOV3,
)
from repro.network.latency import CROSS_COUNTRY, SAME_REGION
from repro.network.topology import CLOUD_XLARGE, EDGE_REGULAR, EDGE_SMALL
from repro.video.library import make_video


def _three_tiers(forward_everything: bool = False) -> list[TierSpec]:
    policy = ThresholdPolicy(0.0, 0.999) if forward_everything else ThresholdPolicy(0.3, 0.7)
    return [
        TierSpec(name="device", model=EDGE_TINY_YOLOV3, machine=EDGE_SMALL, policy=policy),
        TierSpec(
            name="edge",
            model=CLOUD_YOLOV3_320,
            machine=EDGE_REGULAR,
            uplink=SAME_REGION,
            policy=policy,
        ),
        TierSpec(
            name="cloud",
            model=CLOUD_YOLOV3_416,
            machine=CLOUD_XLARGE,
            uplink=CROSS_COUNTRY,
        ),
    ]


class TestMultiTierPipeline:
    def test_requires_two_tiers(self):
        with pytest.raises(ValueError):
            MultiTierPipeline([_three_tiers()[0]])

    def test_processes_all_frames(self):
        pipeline = MultiTierPipeline(_three_tiers(), seed=3)
        result = pipeline.run(make_video("v1", num_frames=15, seed=3))
        assert result.num_frames == 15

    def test_frames_visit_between_one_and_all_tiers(self):
        pipeline = MultiTierPipeline(_three_tiers(), seed=3)
        result = pipeline.run(make_video("v1", num_frames=20, seed=3))
        for trace in result.traces:
            assert 1 <= trace.tiers_visited <= 3

    def test_forwarding_everything_visits_every_tier(self):
        pipeline = MultiTierPipeline(_three_tiers(forward_everything=True), seed=3)
        result = pipeline.run(make_video("v1", num_frames=15, seed=3))
        frames_with_detections = [
            t for t in result.traces if len(t.tiers[0].labels) > 0
        ]
        assert frames_with_detections
        assert all(t.tiers_visited == 3 for t in frames_with_detections)

    def test_initial_latency_smaller_than_final(self):
        pipeline = MultiTierPipeline(_three_tiers(forward_everything=True), seed=3)
        result = pipeline.run(make_video("v1", num_frames=15, seed=3))
        assert result.average_initial_latency <= result.average_final_latency
        assert result.average_initial_latency > 0

    def test_forwarding_ratio_decreases_up_the_cascade(self):
        pipeline = MultiTierPipeline(_three_tiers(), seed=3)
        result = pipeline.run(make_video("v2", num_frames=30, seed=3))
        assert result.forwarding_ratio(0) >= result.forwarding_ratio(1)

    def test_more_tiers_means_higher_final_latency_when_forwarding(self):
        two_tier = MultiTierPipeline(_three_tiers(forward_everything=True)[:2], seed=3)
        three_tier = MultiTierPipeline(_three_tiers(forward_everything=True), seed=3)
        two_result = two_tier.run(make_video("v1", num_frames=15, seed=3))
        three_result = three_tier.run(make_video("v1", num_frames=15, seed=3))
        assert three_result.average_final_latency > two_result.average_final_latency

    def test_transactions_write_per_stage_records(self):
        pipeline = MultiTierPipeline(_three_tiers(forward_everything=True), seed=3)
        pipeline.run(make_video("v1", num_frames=10, seed=3))
        stage_keys = [key for key in pipeline.store.keys() if ":stage-" in key]
        assert stage_keys
        # Every staged transaction that started must have a stage-0 record.
        assert any(key.endswith("stage-0") for key in stage_keys)

    def test_accuracy_is_reported(self):
        pipeline = MultiTierPipeline(_three_tiers(forward_everything=True), seed=3)
        result = pipeline.run(make_video("v3", num_frames=20, seed=3))
        assert 0.0 <= result.f_score <= 1.0

    def test_average_tiers_visited_between_bounds(self):
        pipeline = MultiTierPipeline(_three_tiers(), seed=3)
        result = pipeline.run(make_video("v1", num_frames=20, seed=3))
        assert 1.0 <= result.average_tiers_visited <= 3.0
