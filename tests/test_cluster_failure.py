"""Tests for replica failure/recovery and runtime re-sharding."""

import pytest

from repro.cluster.failure import (
    FailureSpec,
    ReshardSpec,
    recovery_time,
    validate_failure_schedule,
)
from repro.cluster.system import ClusterConfig, ClusterSystem
from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.experiments import ScenarioSpec, run, validate_report
from repro.video.library import make_camera_streams


def failure_config(seed: int = 11, **overrides) -> ClusterConfig:
    overrides.setdefault("num_edges", 3)
    overrides.setdefault("frame_interval", 0.2)
    overrides.setdefault("failure_schedule", ((1, 1.0, 2.0),))
    consistency = overrides.pop("consistency", ConsistencyLevel.MS_SR)
    policy = overrides.pop("transaction_policy", "immediate-2pc")
    return ClusterConfig(
        base=CroesusConfig(seed=seed, consistency=consistency, transaction_policy=policy),
        **overrides,
    )


class TestFailureSpecs:
    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            FailureSpec(edge_id=0, fail_at=2.0, recover_at=1.0)
        with pytest.raises(ValueError):
            FailureSpec(edge_id=-1, fail_at=0.0, recover_at=1.0)
        with pytest.raises(ValueError):
            ReshardSpec(at=-1.0, partition_id=0, to_edge=1)

    def test_schedule_validation(self):
        specs = (FailureSpec(0, 1.0, 2.0), FailureSpec(1, 1.5, 2.5))
        with pytest.raises(ValueError, match="overlapping"):
            validate_failure_schedule(specs, num_edges=3)
        with pytest.raises(ValueError, match="at least 2 edges"):
            validate_failure_schedule((FailureSpec(0, 1.0, 2.0),), num_edges=1)
        with pytest.raises(ValueError, match="there are 2 edges"):
            validate_failure_schedule((FailureSpec(5, 1.0, 2.0),), num_edges=2)

    def test_config_normalises_plain_tuples(self):
        config = failure_config()
        assert config.failure_schedule == (FailureSpec(1, 1.0, 2.0),)

    def test_recovery_time_grows_with_replay_volume(self):
        assert recovery_time(0, 0) < recovery_time(10, 0) < recovery_time(10, 100)


class TestFailureRun:
    @pytest.fixture(scope="class")
    def outcome(self):
        system = ClusterSystem(failure_config(checkpoint_interval_s=0.5))
        result = system.run(make_camera_streams(6, num_frames=10, seed=11))
        return system, result

    def test_all_frames_complete_despite_the_failure(self, outcome):
        _, result = outcome
        assert result.num_frames == 6 * 10
        assert result.num_failures == 1

    def test_streams_fail_over_to_live_edges(self, outcome):
        system, result = outcome
        moved = [record for record in result.migrations if record.from_edge == 1]
        assert moved
        assert all(record.to_edge != 1 for record in moved)
        events = system.events.of_kind("stream_migrated")
        assert any(event.payload.get("reason") == "edge_failed" for event in events)

    def test_failure_and_recovery_events_are_recorded(self, outcome):
        system, result = outcome
        failed = system.events.of_kind("edge_failed")
        recovered = system.events.of_kind("edge_recovered")
        assert len(failed) == len(recovered) == 1
        assert failed[0].payload["edge"] == 1
        record = result.failures[0]
        assert recovered[0].timestamp == pytest.approx(record.recovered_at)
        assert record.downtime > 1.0  # scheduled outage plus the replay
        assert record.recovery_time > 0.0

    def test_in_flight_transactions_abort_through_the_policy_seam(self, outcome):
        _, result = outcome
        assert result.txns_aborted_by_failure > 0
        assert result.failures[0].txns_aborted > 0

    def test_recovery_replays_the_wal(self, outcome):
        system, result = outcome
        assert result.wal_records_replayed >= result.transactions_replayed
        # After recovery the failed edge's partitions serve again.
        for partition_id in system.replicas[1].owned_partitions:
            assert system.store.partition(partition_id).available

    def test_checkpoints_are_taken_and_counted(self, outcome):
        system, result = outcome
        assert result.checkpoints > 0
        assert system.events.count_of_kind("checkpoint") == result.checkpoints

    def test_availability_summary_keys(self, outcome):
        _, result = outcome
        summary = result.availability_summary()
        assert summary["failures"] == 1.0
        assert summary["downtime_ms"] > 0.0
        assert summary["txns_aborted_by_failure"] == float(result.txns_aborted_by_failure)
        # The legacy summary key set stays pinned: no availability keys leak in.
        assert not set(summary) & set(result.summary())


class TestPolicyResolution:
    """Prepared-but-uncommitted finals abort or await per commit policy."""

    def run_with_policy(self, policy: str):
        system = ClusterSystem(failure_config(transaction_policy=policy))
        return system.run(make_camera_streams(6, num_frames=10, seed=11))

    def test_immediate_aborts_in_flight_finals(self):
        result = self.run_with_policy("immediate-2pc")
        assert result.failures[0].txns_aborted > 0

    def test_async_finals_await_the_recovered_coordinator(self):
        result = self.run_with_policy("async-2pc")
        # Async participants hold their prepared state: the failure itself
        # aborts nothing; frames park and finalise after the rejoin.
        assert result.failures[0].txns_aborted == 0
        assert result.num_frames == 6 * 10


class TestFailureEdgeCases:
    def test_back_to_back_failures_wait_for_the_replay_window(self):
        """A failure scheduled at another replica's recover_at must wait
        for that replica's replay to finish (one failure at a time)."""
        system = ClusterSystem(
            failure_config(
                num_edges=2,
                failure_schedule=((0, 1.0, 2.0), (1, 2.0, 3.0)),
            )
        )
        result = system.run(make_camera_streams(4, num_frames=10, seed=11))
        assert result.num_frames == 4 * 10
        assert result.num_failures == 2
        first, second = sorted(result.failures, key=lambda record: record.failed_at)
        # The second failure fired only once the first replica rejoined.
        assert second.failed_at >= first.recovered_at

    def test_migrating_router_never_targets_a_failed_edge(self):
        system = ClusterSystem(
            failure_config(
                num_edges=3,
                router_policy="migrating",
                failure_schedule=((1, 0.5, 5.0),),
            )
        )
        result = system.run(make_camera_streams(8, num_frames=12, seed=3))
        outage = [
            record
            for record in result.migrations
            if 0.5 <= record.time < result.failures[0].recovered_at
        ]
        assert all(record.to_edge != 1 for record in outage)


class TestResharding:
    def test_scheduled_move_changes_ownership(self):
        system = ClusterSystem(
            failure_config(failure_schedule=(), resharding=((1.0, 1, 0),))
        )
        result = system.run(make_camera_streams(6, num_frames=10, seed=11))
        assert len(result.reshards) == 1
        record = result.reshards[0]
        assert record.partition_id == 1
        assert record.from_edge == 1
        assert record.to_edge == 0
        assert 1 in system.replicas[0].owned_partitions
        assert 1 not in system.replicas[1].owned_partitions
        assert len(system.events.of_kind("partition_resharded")) == 1
        assert result.num_frames == 6 * 10

    def test_move_to_current_owner_is_a_noop(self):
        system = ClusterSystem(
            failure_config(failure_schedule=(), resharding=((1.0, 1, 1),))
        )
        result = system.run(make_camera_streams(4, num_frames=6, seed=11))
        assert result.reshards == ()

    def test_config_rejects_unknown_targets(self):
        with pytest.raises(ValueError):
            failure_config(failure_schedule=(), resharding=((1.0, 9, 0),))
        with pytest.raises(ValueError):
            failure_config(failure_schedule=(), resharding=((1.0, 0, 9),))


class TestRecoveryDeterminismPin:
    """Golden pin: a seeded run with one injected failure is reproducible.

    The values were produced by the implementation that introduced the
    durability seam (PR 5) and must never drift; the healthy-run pins in
    ``test_cluster_system.py`` / ``test_experiments.py`` cover the
    no-failure trajectory.
    """

    GOLDEN = {
        "downtime_ms": 1022.0400000000001,
        "recovery_time_ms": 22.039999999999996,
        "frames_replayed": 1,
        "txns_aborted_by_failure": 100,
        "checkpoints": 14,
        "migrations": 2,
        "f_score": 0.9192982456140351,
        "makespan_s": 7.1116629697768365,
        "throughput_fps": 8.436845257570297,
        "transactions": 83,
    }

    def golden_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            deployment="cluster",
            num_edges=3,
            streams=6,
            frames=10,
            seed=11,
            consistency="ms-sr",
            fps=5.0,
            checkpoint_interval_s=0.5,
            failure_schedule=((1, 1.0, 2.0),),
        )

    def test_seeded_failure_run_matches_golden_values(self):
        report = run(self.golden_spec())
        validate_report(report.to_dict())
        for key, value in self.GOLDEN.items():
            assert getattr(report, key) == pytest.approx(value, rel=1e-12, abs=1e-12), key
        event = report.failure_events[0]
        assert event["edge"] == 1
        assert event["failed_at_s"] == pytest.approx(1.0)
        assert event["recovered_at_s"] == pytest.approx(2.02204)

    def test_seeded_failure_run_is_bit_for_bit_reproducible(self):
        first = run(self.golden_spec()).to_json()
        second = run(self.golden_spec()).to_json()
        assert first == second

    def test_spec_round_trip_preserves_the_failure_run(self):
        spec = self.golden_spec()
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert run(rebuilt).to_json() == run(spec).to_json()
