"""Tests for the partitioned store, two-phase commit, and durability."""

import pytest

from repro.storage.locks import LockMode
from repro.storage.partition import (
    PartitionedStore,
    PartitionError,
    TwoPhaseCommitCoordinator,
    VoteOutcome,
)


class TestPartitionedStore:
    def test_requires_at_least_one_partition(self):
        with pytest.raises(PartitionError):
            PartitionedStore(num_partitions=0)

    def test_key_routing_is_stable(self):
        store = PartitionedStore(num_partitions=4)
        first = store.partition_for("user:42").partition_id
        second = store.partition_for("user:42").partition_id
        assert first == second

    def test_read_write_through_routing(self):
        store = PartitionedStore(num_partitions=3)
        store.write("k", "v")
        assert store.read("k") == "v"

    def test_read_default(self):
        store = PartitionedStore(num_partitions=2)
        assert store.read("missing", default=5) == 5

    def test_partitions_touched(self):
        store = PartitionedStore(num_partitions=8)
        keys = [f"key-{i}" for i in range(50)]
        touched = store.partitions_touched(keys)
        assert touched
        assert all(0 <= p < 8 for p in touched)
        assert len(touched) > 1  # 50 keys should span several partitions

    def test_partition_lookup_by_id(self):
        store = PartitionedStore(num_partitions=2)
        assert store.partition(1).partition_id == 1
        with pytest.raises(PartitionError):
            store.partition(5)


class TestTwoPhaseCommit:
    def test_commit_applies_writes_everywhere(self):
        store = PartitionedStore(num_partitions=4)
        coordinator = TwoPhaseCommitCoordinator(store)
        writes = {f"key-{i}": i for i in range(20)}
        result = coordinator.commit("t1", writes)
        assert result.committed
        assert all(vote is VoteOutcome.YES for vote in result.votes.values())
        for key, value in writes.items():
            assert store.read(key) == value

    def test_commit_releases_locks(self):
        store = PartitionedStore(num_partitions=2)
        coordinator = TwoPhaseCommitCoordinator(store)
        coordinator.commit("t1", {"a": 1, "b": 2})
        # a second transaction touching the same keys must succeed
        result = coordinator.commit("t2", {"a": 10, "b": 20})
        assert result.committed
        assert store.read("a") == 10

    def test_abort_when_a_participant_cannot_prepare(self):
        store = PartitionedStore(num_partitions=2)
        # Simulate a concurrent holder of one key's lock.
        blocked_key = "contended"
        partition = store.partition_for(blocked_key)
        partition.locks.try_acquire("other", blocked_key, LockMode.EXCLUSIVE)

        coordinator = TwoPhaseCommitCoordinator(store)
        result = coordinator.commit("t1", {blocked_key: 1, "free": 2})
        assert not result.committed
        assert VoteOutcome.NO in result.votes.values()
        # No write may have been applied anywhere (atomicity).
        assert store.read(blocked_key, default=None) is None
        assert store.read("free", default=None) is None

    def test_participants_reported(self):
        store = PartitionedStore(num_partitions=4)
        coordinator = TwoPhaseCommitCoordinator(store)
        result = coordinator.commit("t1", {"only-one-key": 1})
        assert len(result.participants) == 1

    def test_unavailable_participant_votes_no(self):
        store = PartitionedStore(num_partitions=2)
        coordinator = TwoPhaseCommitCoordinator(store)
        writes = {f"key-{i}": i for i in range(10)}
        participants = store.partitions_touched(writes)
        assert len(participants) == 2
        store.partition(0).crash()

        result = coordinator.commit("t1", writes)
        assert not result.committed
        assert result.votes[0] is VoteOutcome.NO
        assert store.failure_aborts == 1
        # Atomicity: nothing was applied to the live partition either.
        assert all(store.read(key, default=None) is None for key in writes)


class TestPartitionDurability:
    def test_committed_writes_are_logged(self):
        store = PartitionedStore(num_partitions=1)
        store.write("a", 1, writer="t1")
        store.write("b", 2, writer="t2")
        wal = store.partition(0).wal
        assert len(wal) == 2
        assert [record.transaction_id for record in wal.records()] == ["t1", "t2"]

    def test_crash_loses_volatile_state_but_keeps_the_log(self):
        store = PartitionedStore(num_partitions=1)
        store.write("a", 1)
        partition = store.partition(0)
        partition.crash()
        assert not partition.available
        assert partition.store.read("a", default=None) is None
        assert len(partition.wal) == 1

    def test_recover_without_checkpoint_replays_the_whole_log(self):
        store = PartitionedStore(num_partitions=1)
        for index in range(5):
            store.write(f"k{index}", index, writer=f"t{index}")
        partition = store.partition(0)
        partition.crash()
        outcome = partition.recover()
        assert outcome.records_replayed == 5
        assert outcome.transactions_replayed == 5
        assert outcome.keys_restored == 0
        assert partition.available
        assert partition.store.snapshot() == {f"k{i}": i for i in range(5)}

    def test_recover_from_checkpoint_replays_only_the_tail(self):
        store = PartitionedStore(num_partitions=1)
        store.write("a", 1, writer="t1")
        store.write("b", 2, writer="t1")
        partition = store.partition(0)
        checkpoint = partition.take_checkpoint()
        store.write("c", 3, writer="t2")

        partition.crash()
        outcome = partition.recover()
        assert outcome.checkpoint_lsn == checkpoint.lsn
        assert outcome.keys_restored == 2
        assert outcome.records_replayed == 1
        assert outcome.transactions_replayed == 1
        assert partition.store.snapshot() == {"a": 1, "b": 2, "c": 3}

    def test_checkpoint_all_skips_unavailable_partitions(self):
        store = PartitionedStore(num_partitions=2)
        store.partition(1).crash()
        checkpoints = store.checkpoint_all()
        assert set(checkpoints) == {0}


class TestResharding:
    def _spanning_keys(self, store, count=40):
        keys = [f"key-{i}" for i in range(count)]
        for key in keys:
            store.write(key, key.upper(), writer="seed")
        return keys

    def test_transfer_partition_preserves_values(self):
        store = PartitionedStore(num_partitions=2)
        keys = self._spanning_keys(store)
        partition = store.partition(0)
        partition.take_checkpoint()
        store.write(keys[0], "tail-value", writer="late")

        outcome = store.transfer_partition(0)
        assert outcome.keys_copied > 0
        for key in keys:
            expected = "tail-value" if key == keys[0] else key.upper()
            assert store.read(key) == expected

    def test_transfer_ships_the_log_tail(self):
        store = PartitionedStore(num_partitions=1)
        store.write("a", 1)
        store.partition(0).take_checkpoint()
        store.write("b", 2)
        outcome = store.transfer_partition(0)
        assert outcome.records_shipped == 1

    def test_split_moves_slots_and_keys(self):
        # A split needs a partition owning >= 2 hash slots, which only a
        # previous merge produces: merge both slots onto partition 1,
        # then split it back apart.
        store = PartitionedStore(num_partitions=2)
        keys = self._spanning_keys(store)
        before = {key: store.read(key) for key in keys}
        store.merge(0, 1)

        new_partition = store.split(1)
        assert store.num_partitions == 2
        assert new_partition.partition_id == 2
        assert store.slots_of(2)
        assert store.slots_of(1)
        # Every key still reads its value, wherever it landed.
        assert {key: store.read(key) for key in keys} == before
        # The split actually moved keys onto the new partition.
        assert any(store.partition_for(k).partition_id == 2 for k in keys)

    def test_split_requires_two_slots(self):
        store = PartitionedStore(num_partitions=2)
        with pytest.raises(PartitionError):
            store.split(0)  # one slot per partition initially

    def test_merge_absorbs_the_source(self):
        store = PartitionedStore(num_partitions=2)
        keys = self._spanning_keys(store)
        before = {key: store.read(key) for key in keys}

        outcome = store.merge(0, 1)
        assert store.num_partitions == 1
        assert store.partition_ids() == (1,)
        assert outcome.keys_copied > 0
        assert {key: store.read(key) for key in keys} == before
        assert store.partitions_touched(keys) == frozenset({1})

    def test_merge_moves_live_locks(self):
        store = PartitionedStore(num_partitions=2)
        keys = self._spanning_keys(store)
        locked = next(k for k in keys if store.partition_for(k).partition_id == 0)
        store.partition(0).locks.try_acquire("holder", locked, LockMode.EXCLUSIVE)

        store.merge(0, 1)
        assert store.partition(1).locks.holds("holder", locked)

    def test_merge_moves_locks_on_unwritten_keys(self):
        """MS-SR holds locks on keys whose writes are still buffered: a
        grant with no committed write must survive the move too."""
        store = PartitionedStore(num_partitions=2)
        unwritten = "never-written-key"
        owner = store.partition_for(unwritten).partition_id
        other = 1 - owner
        store.partition(owner).locks.try_acquire("t1", unwritten, LockMode.EXCLUSIVE)

        store.merge(owner, other)
        assert store.partition(other).locks.holds("t1", unwritten)
        # No second exclusive grant is possible on the moved key.
        assert not store.partition(other).locks.try_acquire(
            "t2", unwritten, LockMode.EXCLUSIVE
        )

    def test_merge_rejects_self_and_unknown(self):
        store = PartitionedStore(num_partitions=2)
        with pytest.raises(PartitionError):
            store.merge(0, 0)
        with pytest.raises(PartitionError):
            store.merge(5, 0)
