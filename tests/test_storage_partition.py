"""Tests for the partitioned store and two-phase commit."""

import pytest

from repro.storage.locks import LockMode
from repro.storage.partition import (
    PartitionedStore,
    PartitionError,
    TwoPhaseCommitCoordinator,
    VoteOutcome,
)


class TestPartitionedStore:
    def test_requires_at_least_one_partition(self):
        with pytest.raises(PartitionError):
            PartitionedStore(num_partitions=0)

    def test_key_routing_is_stable(self):
        store = PartitionedStore(num_partitions=4)
        first = store.partition_for("user:42").partition_id
        second = store.partition_for("user:42").partition_id
        assert first == second

    def test_read_write_through_routing(self):
        store = PartitionedStore(num_partitions=3)
        store.write("k", "v")
        assert store.read("k") == "v"

    def test_read_default(self):
        store = PartitionedStore(num_partitions=2)
        assert store.read("missing", default=5) == 5

    def test_partitions_touched(self):
        store = PartitionedStore(num_partitions=8)
        keys = [f"key-{i}" for i in range(50)]
        touched = store.partitions_touched(keys)
        assert touched
        assert all(0 <= p < 8 for p in touched)
        assert len(touched) > 1  # 50 keys should span several partitions

    def test_partition_lookup_by_id(self):
        store = PartitionedStore(num_partitions=2)
        assert store.partition(1).partition_id == 1
        with pytest.raises(PartitionError):
            store.partition(5)


class TestTwoPhaseCommit:
    def test_commit_applies_writes_everywhere(self):
        store = PartitionedStore(num_partitions=4)
        coordinator = TwoPhaseCommitCoordinator(store)
        writes = {f"key-{i}": i for i in range(20)}
        result = coordinator.commit("t1", writes)
        assert result.committed
        assert all(vote is VoteOutcome.YES for vote in result.votes.values())
        for key, value in writes.items():
            assert store.read(key) == value

    def test_commit_releases_locks(self):
        store = PartitionedStore(num_partitions=2)
        coordinator = TwoPhaseCommitCoordinator(store)
        coordinator.commit("t1", {"a": 1, "b": 2})
        # a second transaction touching the same keys must succeed
        result = coordinator.commit("t2", {"a": 10, "b": 20})
        assert result.committed
        assert store.read("a") == 10

    def test_abort_when_a_participant_cannot_prepare(self):
        store = PartitionedStore(num_partitions=2)
        # Simulate a concurrent holder of one key's lock.
        blocked_key = "contended"
        partition = store.partition_for(blocked_key)
        partition.locks.try_acquire("other", blocked_key, LockMode.EXCLUSIVE)

        coordinator = TwoPhaseCommitCoordinator(store)
        result = coordinator.commit("t1", {blocked_key: 1, "free": 2})
        assert not result.committed
        assert VoteOutcome.NO in result.votes.values()
        # No write may have been applied anywhere (atomicity).
        assert store.read(blocked_key, default=None) is None
        assert store.read("free", default=None) is None

    def test_participants_reported(self):
        store = PartitionedStore(num_partitions=4)
        coordinator = TwoPhaseCommitCoordinator(store)
        result = coordinator.commit("t1", {"only-one-key": 1})
        assert len(result.participants) == 1
