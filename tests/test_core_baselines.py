"""Tests for the edge-only / cloud-only / hybrid baselines."""

import pytest

from repro.core.baselines import (
    run_cloud_only,
    run_croesus,
    run_edge_only,
    run_hybrid_cloud,
    run_hybrid_croesus,
)
from repro.core.config import CroesusConfig


@pytest.fixture(scope="module")
def config() -> CroesusConfig:
    return CroesusConfig(seed=6)


FRAMES = 30


class TestEdgeOnlyBaseline:
    def test_never_uses_the_cloud(self, config):
        result = run_edge_only(config, "v1", num_frames=FRAMES)
        assert result.bandwidth_utilization == pytest.approx(0.0, abs=0.05)

    def test_fast_but_inaccurate(self, config):
        edge = run_edge_only(config, "v1", num_frames=FRAMES)
        cloud = run_cloud_only(config, "v1", num_frames=FRAMES)
        assert edge.average_final_latency < cloud.average_final_latency / 3
        assert edge.f_score < cloud.f_score


class TestCloudOnlyBaseline:
    def test_accuracy_is_perfect_by_construction(self, config):
        result = run_cloud_only(config, "v1", num_frames=FRAMES)
        assert result.f_score == pytest.approx(1.0)

    def test_no_fast_initial_response(self, config):
        result = run_cloud_only(config, "v1", num_frames=FRAMES)
        assert result.average_initial_latency == result.average_final_latency

    def test_latency_dominated_by_detection(self, config):
        result = run_cloud_only(config, "v1", num_frames=FRAMES)
        breakdown = result.average_breakdown
        assert breakdown.cloud_detection > breakdown.cloud_transfer

    def test_every_frame_sent(self, config):
        assert run_cloud_only(config, "v1", num_frames=FRAMES).bandwidth_utilization == 1.0


class TestCroesusVsBaselines:
    def test_initial_latency_comparable_to_edge(self, config):
        croesus = run_croesus(config, "v1", num_frames=FRAMES)
        edge = run_edge_only(config, "v1", num_frames=FRAMES)
        assert croesus.average_initial_latency == pytest.approx(
            edge.average_initial_latency, rel=0.25
        )

    def test_final_latency_below_cloud_only(self, config):
        croesus = run_croesus(config.with_thresholds(0.45, 0.55), "v1", num_frames=FRAMES)
        cloud = run_cloud_only(config, "v1", num_frames=FRAMES)
        assert croesus.average_final_latency < cloud.average_final_latency

    def test_accuracy_above_edge_only(self, config):
        croesus = run_croesus(config, "v1", num_frames=FRAMES)
        edge = run_edge_only(config, "v1", num_frames=FRAMES)
        assert croesus.f_score > edge.f_score


class TestHybridTechniques:
    def test_compression_reduces_cloud_baseline_latency(self, config):
        plain = run_cloud_only(config, "v1", num_frames=FRAMES)
        compressed = run_hybrid_cloud(config, "v1", num_frames=FRAMES)
        assert compressed.average_breakdown.cloud_transfer < plain.average_breakdown.cloud_transfer

    def test_difference_reduces_transfer_further(self, config):
        compressed = run_hybrid_cloud(config, "v1", num_frames=FRAMES)
        differenced = run_hybrid_cloud(config, "v1", num_frames=FRAMES, use_difference=True)
        assert (
            differenced.average_breakdown.cloud_transfer
            <= compressed.average_breakdown.cloud_transfer
        )

    def test_improvement_is_small_because_detection_dominates(self, config):
        """Figure 6c's point: pre-processing helps a little, the detection
        latency still dominates the cloud baseline."""
        plain = run_cloud_only(config, "v1", num_frames=FRAMES)
        hybrid = run_hybrid_cloud(config, "v1", num_frames=FRAMES, use_difference=True)
        saving = plain.average_final_latency - hybrid.average_final_latency
        assert saving < 0.5 * plain.average_final_latency

    def test_hybrid_croesus_no_slower_than_plain_croesus(self, config):
        plain = run_croesus(config, "v1", num_frames=FRAMES)
        hybrid = run_hybrid_croesus(config, "v1", num_frames=FRAMES)
        assert (
            hybrid.average_breakdown.cloud_transfer
            <= plain.average_breakdown.cloud_transfer
        )

    def test_hybrid_croesus_keeps_accuracy(self, config):
        plain = run_croesus(config, "v1", num_frames=FRAMES)
        hybrid = run_hybrid_croesus(config, "v1", num_frames=FRAMES)
        assert hybrid.f_score == pytest.approx(plain.f_score)

    def test_hybrid_names(self, config):
        assert run_hybrid_cloud(config, "v1", num_frames=5).name == "cloud+compression"
        assert (
            run_hybrid_cloud(config, "v1", num_frames=5, use_difference=True).name
            == "cloud+compression+difference"
        )
