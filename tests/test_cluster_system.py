"""Tests for the multi-edge cluster deployment."""

import pytest

from repro.cluster.system import ClusterConfig, ClusterSystem, hotspot_bank_factory
from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.video.library import make_camera_streams, make_uneven_camera_streams, make_video


def make_streams(count: int, frames: int = 8, seed: int = 7):
    return make_camera_streams(count, num_frames=frames, seed=seed)


def cluster_config(seed: int = 7, **overrides) -> ClusterConfig:
    overrides.setdefault("num_edges", 2)
    return ClusterConfig(base=CroesusConfig(seed=seed), **overrides)


class TestClusterConfig:
    def test_partition_count(self):
        config = cluster_config(num_edges=3, partitions_per_edge=2)
        assert config.num_partitions == 6

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            cluster_config(num_edges=0)
        with pytest.raises(ValueError):
            cluster_config(partitions_per_edge=0)
        with pytest.raises(ValueError):
            cluster_config(router_policy="nope")
        with pytest.raises(ValueError):
            cluster_config(frame_interval=0.0)
        with pytest.raises(ValueError):
            cluster_config(hotspot_fraction=2.0)

    def test_with_helpers(self):
        config = cluster_config()
        assert config.with_edges(5).num_edges == 5
        assert config.with_router("hotspot").router_policy == "hotspot"
        assert config.seed == config.base.seed


class TestClusterRun:
    def test_hotspot_run_completes_end_to_end(self):
        """Acceptance: ≥2 edges + hotspot router, all frames processed."""
        system = ClusterSystem(cluster_config(num_edges=3, router_policy="hotspot"))
        streams = make_streams(4, frames=6)
        result = system.run(streams)

        assert set(result.placements) == {video.name for video in streams}
        assert result.num_frames == 4 * 6
        for name, run in result.per_stream.items():
            assert run.num_frames == 6, name
        assert sum(edge.frames_processed for edge in result.edges) == 24
        assert result.makespan > 0
        assert result.throughput_fps > 0

    def test_cross_partition_fraction_is_nonzero(self):
        system = ClusterSystem(cluster_config(num_edges=2))
        result = system.run(make_streams(2))
        assert result.total_transactions > 0
        assert result.cross_partition_fraction > 0.0
        assert result.multi_partition_transactions > 0

    def test_traces_carry_their_edge(self):
        system = ClusterSystem(cluster_config(num_edges=2))
        result = system.run(make_streams(2, frames=4))
        for name, run in result.per_stream.items():
            home = result.placements[name]
            assert all(trace.edge_id == home for trace in run.traces)

    def test_seeded_run_is_reproducible(self):
        """Acceptance: identical configs and seeds give identical runs."""
        def run_once():
            system = ClusterSystem(cluster_config(num_edges=3, router_policy="hotspot"))
            return system.run(make_streams(4, frames=5))

        first, second = run_once(), run_once()
        assert first.summary() == second.summary()
        assert first.placements == second.placements
        for name in first.per_stream:
            a = first.per_stream[name].traces
            b = second.per_stream[name].traces
            assert [t.latency for t in a] == [t.latency for t in b]
            assert [t.accuracy for t in a] == [t.accuracy for t in b]

    def test_queue_delay_grows_with_stream_count(self):
        """One edge, rising load: mean queue delay must not shrink."""
        delays = []
        for count in (1, 2, 4):
            system = ClusterSystem(cluster_config(num_edges=1, frame_interval=0.02))
            delays.append(system.run(make_streams(count, frames=5)).mean_queue_delay)
        assert delays[0] <= delays[1] <= delays[2]
        assert delays[2] > delays[0]

    def test_abort_accounting_matches_controller_stats(self):
        """Cluster-level 2PC abort numbers must mirror the replicas' stats."""
        config = ClusterConfig(
            base=CroesusConfig(seed=11, consistency=ConsistencyLevel.MS_SR),
            num_edges=3,
        )
        system = ClusterSystem(config, bank_factory=hotspot_bank_factory(11, key_range=10))
        result = system.run(make_streams(3, frames=8, seed=11))

        assert result.stats.aborts == sum(r.stats.aborts for r in system.replicas)
        assert result.stats.initial_commits == sum(r.stats.initial_commits for r in system.replicas)
        assert result.stats.final_commits == sum(r.stats.final_commits for r in system.replicas)
        assert result.stats.aborts > 0
        expected_rate = result.stats.aborts / (result.stats.initial_commits + result.stats.aborts)
        assert result.two_phase_abort_rate == pytest.approx(expected_rate)

    def test_hotspot_router_skews_load(self):
        config = cluster_config(seed=1, num_edges=4, router_policy="hotspot", hotspot_fraction=1.0)
        result = ClusterSystem(config).run(make_streams(4, frames=4, seed=1))
        assert result.edges[0].frames_processed == 16
        assert all(edge.frames_processed == 0 for edge in result.edges[1:])

    def test_repeated_runs_start_from_clean_queues(self):
        """A second run() must not inherit the first run's backlog."""
        system = ClusterSystem(cluster_config(num_edges=2))
        system.run(make_streams(2, frames=4))
        second = system.run(make_streams(2, frames=4, seed=20))

        assert second.num_frames == 2 * 4
        # queue accounting covers only this run: two admissions per frame
        assert sum(edge.queue_jobs for edge in second.edges) == 2 * second.num_frames
        # stream assignments are not duplicated across runs
        assert sum(len(edge.streams) for edge in second.edges) == 2
        assert second.total_transactions > 0

    def test_rejects_empty_or_duplicate_streams(self):
        system = ClusterSystem(cluster_config())
        with pytest.raises(ValueError):
            system.run([])
        video_a = make_video("v1", num_frames=2, seed=0)
        video_b = make_video("v1", num_frames=2, seed=1)
        with pytest.raises(ValueError):
            system.run([video_a, video_b])

    def test_summary_keys(self):
        system = ClusterSystem(cluster_config())
        summary = system.run(make_streams(2, frames=3)).summary()
        assert {
            "edges",
            "streams",
            "frames",
            "throughput_fps",
            "mean_queue_delay_ms",
            "cross_partition_fraction",
            "two_phase_abort_rate",
            "f_score",
        } <= set(summary)


class TestCloudContention:
    def test_unbounded_cloud_never_queues(self):
        system = ClusterSystem(cluster_config(num_edges=2, cloud_servers=None))
        result = system.run(make_streams(4, frames=6))
        assert result.mean_cloud_queue_delay == 0.0

    def test_single_cloud_server_queues_validations(self):
        """Acceptance: cloud_servers=1 + enough validated frames -> nonzero delay."""
        system = ClusterSystem(cluster_config(num_edges=2, cloud_servers=1))
        result = system.run(make_streams(4, frames=6))
        validated = [
            trace
            for run in result.per_stream.values()
            for trace in run.traces
            if trace.sent_to_cloud
        ]
        assert len(validated) > 2
        assert result.mean_cloud_queue_delay > 0.0
        assert any(trace.latency.cloud_queue_delay > 0.0 for trace in validated)
        # unvalidated frames never pay cloud queueing
        for run in result.per_stream.values():
            for trace in run.traces:
                if not trace.sent_to_cloud:
                    assert trace.latency.cloud_queue_delay == 0.0

    def test_more_cloud_servers_drain_the_queue(self):
        delays = []
        for servers in (1, 2, 4):
            system = ClusterSystem(cluster_config(num_edges=2, cloud_servers=servers))
            delays.append(system.run(make_streams(4, frames=6)).mean_cloud_queue_delay)
        assert delays[0] >= delays[1] >= delays[2]
        assert delays[0] > delays[2]

    def test_cloud_validate_events_are_recorded(self):
        system = ClusterSystem(cluster_config(num_edges=2, cloud_servers=1))
        result = system.run(make_streams(2, frames=5))
        events = system.events.of_kind("cloud_validate")
        validated = sum(
            1 for run in result.per_stream.values() for t in run.traces if t.sent_to_cloud
        )
        assert len(events) == validated
        assert all("queue_delay" in event.payload for event in events)

    def test_rejects_nonpositive_cloud_servers(self):
        with pytest.raises(ValueError):
            cluster_config(cloud_servers=0)


def uneven_streams(seed: int = 11):
    """Two long-running cameras plus six short ones (placement-time traps)."""
    return make_uneven_camera_streams(8, long_frames=40, short_frames=10, seed=seed)


class TestStreamMigration:
    def migrating_config(self, policy: str = "migrating") -> ClusterConfig:
        return ClusterConfig(
            base=CroesusConfig(seed=11, consistency=ConsistencyLevel.MS_SR),
            num_edges=4,
            router_policy=policy,
            frame_interval=0.2,
        )

    def test_migrations_fire_and_are_recorded(self):
        system = ClusterSystem(
            self.migrating_config(), bank_factory=hotspot_bank_factory(11, key_range=50)
        )
        result = system.run(uneven_streams())
        assert result.num_migrations > 0
        assert len(system.events.of_kind("stream_migrated")) == result.num_migrations
        for record in result.migrations:
            assert record.from_edge != record.to_edge
            assert record.utilization > 0
        # final placements reflect the last move of every migrated stream
        last_move = {record.stream: record.to_edge for record in result.migrations}
        for stream, edge in last_move.items():
            assert result.final_placements[stream] == edge

    def test_migration_reduces_max_utilization_vs_least_loaded(self):
        """Acceptance: runtime migration beats placement-time least-loaded."""
        outcomes = {}
        for policy in ("least-loaded", "migrating"):
            system = ClusterSystem(
                self.migrating_config(policy),
                bank_factory=hotspot_bank_factory(11, key_range=50),
            )
            outcomes[policy] = system.run(uneven_streams())
        assert outcomes["migrating"].num_migrations > 0
        assert outcomes["least-loaded"].num_migrations == 0
        assert (
            outcomes["migrating"].max_utilization
            < outcomes["least-loaded"].max_utilization
        )

    def test_static_policies_never_migrate(self):
        system = ClusterSystem(cluster_config(num_edges=2, router_policy="round-robin"))
        result = system.run(make_streams(4, frames=6))
        assert result.num_migrations == 0
        assert result.final_placements == result.placements

    def test_rejects_bad_migration_band(self):
        with pytest.raises(ValueError):
            cluster_config(migration_high=0.4, migration_low=0.6)
        with pytest.raises(ValueError):
            cluster_config(migration_window=0.0)


class TestDeterminismPin:
    """Golden summary of one seeded run.

    These exact values were produced by the pre-engine implementation
    (PR 1) for the then-existing keys and must never drift: they pin
    both the refactor's behaviour-preservation and future changes'.
    """

    GOLDEN = {
        "edges": 2.0,
        "streams": 4.0,
        "frames": 24.0,
        "makespan_s": 3.5568000021864665,
        "throughput_fps": 6.747638322437729,
        "mean_queue_delay_ms": 786.8335646687067,
        "mean_cloud_queue_delay_ms": 0.0,
        "max_utilization": 0.6918158752054603,
        "cross_partition_fraction": 0.7857142857142857,
        "num_cross_partition_txns": 22.0,
        "two_phase_abort_rate": 0.0,
        "f_score": 0.5853658536585366,
        "migrations": 0.0,
    }

    def test_seeded_summary_matches_golden_values(self):
        config = ClusterConfig(base=CroesusConfig(seed=11), num_edges=2)
        summary = ClusterSystem(config).run(
            make_camera_streams(4, num_frames=6, seed=11)
        ).summary()
        assert set(summary) == set(self.GOLDEN)
        for key, value in self.GOLDEN.items():
            assert summary[key] == pytest.approx(value, rel=1e-12, abs=1e-12), key
