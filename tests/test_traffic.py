"""Tests for the open-loop traffic subsystem.

Covers the arrival-process generators (shape, seeding, the golden pin,
and a hypothesis property on the empirical rate), admission control and
apology-budgeted shedding, the open-loop entry points of both systems,
the hazard-mode failure injector, failback migration, and the
sustained-overload acceptance criteria.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeline import traffic_profile
from repro.cluster.failure import FailureInjector
from repro.cluster.system import ClusterConfig, ClusterSystem
from repro.core.config import CroesusConfig
from repro.core.system import CroesusSystem
from repro.experiments import ScenarioSpec, build_traffic_config, run, validate_report
from repro.sim.rng import RngRegistry
from repro.traffic import (
    ApologyBudget,
    ArrivalProcess,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    LoadShedder,
    QueueThresholdAdmission,
    TokenBucketAdmission,
    TraceRate,
    TrafficConfig,
    TrafficSource,
    empirical_mean_interarrival,
    make_admission,
    make_rate_curve,
    percentile,
    sample_stream_length,
)
from repro.video.library import make_camera_streams


# -- rate curves --------------------------------------------------------------
class TestRateCurves:
    def test_constant_rate_is_flat(self):
        curve = ConstantRate(2.5)
        assert curve.rate(0.0) == curve.rate(100.0) == 2.5
        assert curve.peak == 2.5

    def test_diurnal_swings_between_base_and_peak(self):
        curve = DiurnalRate(base=1.0, peak_rate=3.0, period_s=10.0)
        assert curve.rate(0.0) == pytest.approx(1.0)
        assert curve.rate(5.0) == pytest.approx(3.0)  # half period = peak
        assert curve.rate(10.0) == pytest.approx(1.0)
        assert curve.peak == pytest.approx(3.0)

    def test_diurnal_time_average_is_midpoint(self):
        curve = DiurnalRate(base=1.0, peak_rate=3.0, period_s=8.0)
        times = np.linspace(0.0, 8.0, 10_001)
        average = float(np.mean([curve.rate(t) for t in times]))
        assert average == pytest.approx(2.0, rel=1e-3)

    def test_flash_crowd_ramps_holds_and_returns(self):
        curve = FlashCrowdRate(
            base=1.0, peak_rate=5.0, spike_at=10.0, ramp_s=2.0, hold_s=4.0
        )
        assert curve.rate(0.0) == pytest.approx(1.0)
        assert curve.rate(11.0) == pytest.approx(3.0)  # mid-ramp
        assert curve.rate(13.0) == pytest.approx(5.0)  # holding
        assert curve.rate(17.0) == pytest.approx(3.0)  # ramping down
        assert curve.rate(30.0) == pytest.approx(1.0)

    def test_trace_interpolates_and_is_flat_outside(self):
        curve = TraceRate(points=((0.0, 1.0), (10.0, 3.0)))
        assert curve.rate(-5.0) == pytest.approx(1.0)
        assert curve.rate(5.0) == pytest.approx(2.0)
        assert curve.rate(50.0) == pytest.approx(3.0)
        assert curve.peak == pytest.approx(3.0)

    @pytest.mark.parametrize("process", ["poisson", "diurnal", "flash-crowd", "trace"])
    def test_make_rate_curve_time_average_matches_offered(self, process):
        offered, duration = 1.5, 20.0
        curve = make_rate_curve(process, offered, peak_factor=4.0, duration_s=duration)
        times = np.linspace(0.0, duration, 20_001)
        average = float(np.trapezoid([curve.rate(t) for t in times], times)) / duration
        assert average == pytest.approx(offered, rel=0.05)
        assert curve.peak >= offered - 1e-9

    def test_make_rate_curve_rejects_unknown_process(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_rate_curve("bursty", 1.0, peak_factor=4.0, duration_s=8.0)


# -- arrival process ----------------------------------------------------------
class TestArrivalProcess:
    def test_arrivals_are_increasing_and_inside_horizon(self):
        process = ArrivalProcess(ConstantRate(3.0), RngRegistry(3).stream("traffic-arrivals"))
        times = list(process.arrivals(10.0))
        assert times == sorted(times)
        assert all(0.0 <= t < 10.0 for t in times)

    def test_seeded_golden_pin(self):
        """Exact arrival instants of seed 7 — the determinism contract."""
        process = ArrivalProcess(ConstantRate(1.0), RngRegistry(7).stream("traffic-arrivals"))
        times = [round(t, 6) for t in process.arrivals(8.0)]
        assert times == [0.584025, 1.06924, 1.376519, 1.822167, 5.677983, 6.778874]

    def test_same_seed_same_arrivals(self):
        def draw():
            process = ArrivalProcess(
                DiurnalRate(base=0.5, peak_rate=2.0, period_s=8.0),
                RngRegistry(13).stream("traffic-arrivals"),
            )
            return list(process.arrivals(16.0))

        assert draw() == draw()

    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=4.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_empirical_mean_interarrival_matches_rate(self, rate, seed):
        """Mean interarrival of ~2000 Poisson samples is 1/rate ± 15%."""
        horizon = 2000.0 / rate
        process = ArrivalProcess(ConstantRate(rate), RngRegistry(seed).stream("a"))
        times = list(process.arrivals(horizon))
        assert len(times) > 1000
        assert empirical_mean_interarrival(times) == pytest.approx(1.0 / rate, rel=0.15)


class TestStreamLengths:
    def test_fixed_is_the_mean(self):
        rng = np.random.default_rng(0)
        assert sample_stream_length("fixed", 10, rng) == 10

    def test_geometric_is_positive_with_matching_mean(self):
        rng = np.random.default_rng(1)
        samples = [sample_stream_length("geometric", 8, rng) for _ in range(4000)]
        assert min(samples) >= 1
        assert float(np.mean(samples)) == pytest.approx(8.0, rel=0.1)

    def test_uniform_stays_in_bounds(self):
        rng = np.random.default_rng(2)
        samples = [sample_stream_length("uniform", 6, rng) for _ in range(500)]
        assert all(1 <= s <= 11 for s in samples)

    def test_unknown_distribution_raises(self):
        with pytest.raises(ValueError, match="unknown stream_length"):
            sample_stream_length("zipf", 10, np.random.default_rng(0))


# -- admission ----------------------------------------------------------------
class TestAdmission:
    def test_none_admits_everything(self):
        controller = make_admission("none")
        assert all(controller.admit(t, float("inf")) for t in range(10))

    def test_token_bucket_burst_then_throttle(self):
        bucket = TokenBucketAdmission(rate=1.0, burst=2.0)
        assert bucket.admit(0.0, 0.0)
        assert bucket.admit(0.0, 0.0)
        assert not bucket.admit(0.0, 0.0)  # burst exhausted
        assert bucket.admit(1.0, 0.0)  # one token accrued
        assert not bucket.admit(1.0, 0.0)

    def test_queue_threshold_bounds_backlog(self):
        controller = QueueThresholdAdmission(max_backlog_s=0.5)
        assert controller.admit(0.0, 0.4)
        assert controller.admit(0.0, 0.5)
        assert not controller.admit(0.0, 0.6)
        assert not controller.admit(0.0, float("inf"))

    def test_factory_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown admission"):
            make_admission("random-drop")


# -- shedding -----------------------------------------------------------------
class TestShedding:
    def test_budget_accrues_and_caps_at_burst(self):
        budget = ApologyBudget(per_second=2.0, burst=3.0)
        assert budget.balance(0.0) == pytest.approx(3.0)
        assert budget.balance(100.0) == pytest.approx(3.0)  # capped
        assert budget.spend(0.0)
        assert budget.spend(0.0)
        assert budget.spend(0.0)
        assert not budget.spend(0.0)  # empty
        assert budget.spend(0.5)  # 2/s refill
        assert budget.spent == 4

    def test_shedder_needs_both_load_and_budget(self):
        shedder = LoadShedder(threshold=0.8, budget=ApologyBudget(per_second=1.0, burst=1.0))
        assert not shedder.should_shed(0.0, load=0.5)  # below threshold
        assert shedder.should_shed(0.0, load=0.9)
        assert not shedder.should_shed(0.0, load=0.9)  # budget empty
        assert shedder.shed_frames == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            LoadShedder(threshold=0.0, budget=ApologyBudget(per_second=1.0))


# -- traffic source -----------------------------------------------------------
class TestTrafficSource:
    def test_seeded_golden_pin(self):
        """Streams of seed 7: arrival instants, names, sampled lengths."""
        source = TrafficSource(
            TrafficConfig(
                offered_rate=1.0, duration_s=8.0, mean_frames=4, stream_length="geometric"
            ),
            RngRegistry(7),
        )
        out = [(round(t, 6), v.name, v.num_frames) for t, v in source.streams()]
        assert out == [
            (0.584025, "open0-v1", 3),
            (1.06924, "open1-v2", 6),
            (1.376519, "open2-v3", 2),
            (1.822167, "open3-v4", 6),
            (5.677983, "open4-v5", 6),
            (6.778874, "open5-v1", 1),
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="offered_rate"):
            TrafficConfig(offered_rate=0.0)
        with pytest.raises(ValueError, match="duration"):
            TrafficConfig(duration_s=-1.0)
        with pytest.raises(ValueError, match="apology_budget"):
            TrafficConfig(apology_budget=0.0)

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile([7.0], 99) == 7.0
        assert percentile([], 50) == 0.0


# -- open-loop runs -----------------------------------------------------------
def _open_loop_cluster(**overrides) -> tuple[ClusterSystem, TrafficConfig]:
    config = ClusterConfig(base=CroesusConfig(seed=2022), num_edges=2, frame_interval=0.5)
    traffic = dict(offered_rate=1.0, duration_s=8.0, mean_frames=6, frame_interval=0.5)
    traffic.update(overrides)
    return ClusterSystem(config), TrafficConfig(**traffic)


class TestOpenLoopCluster:
    def test_two_runs_are_bit_identical(self):
        def go():
            system, traffic = _open_loop_cluster()
            result = system.run_open_loop(traffic)
            return (result.makespan, result.throughput_fps, result.goodput_fps,
                    result.traffic.completed_frames, result.f_score)

        assert go() == go()

    def test_stats_are_conserved_without_control(self):
        system, traffic = _open_loop_cluster()
        result = system.run_open_loop(traffic)
        stats = result.traffic
        assert stats.offered_streams == stats.admitted_streams + stats.rejected_streams
        assert stats.rejected_streams == 0
        assert stats.shed_frames == 0
        assert stats.completed_frames == stats.admitted_frames
        assert result.goodput_fps == pytest.approx(
            stats.completed_frames / result.makespan
        )

    def test_traffic_summary_and_percentiles(self):
        system, traffic = _open_loop_cluster()
        result = system.run_open_loop(traffic)
        summary = result.traffic_summary()
        percentiles = result.latency_percentiles()
        assert summary["offered_streams"] == result.traffic.offered_streams
        assert summary["p99_latency_ms"] == percentiles["p99_ms"]
        assert 0 < percentiles["p50_ms"] <= percentiles["p95_ms"] <= percentiles["p99_ms"]

    def test_events_feed_the_timeline_reduction(self):
        system, traffic = _open_loop_cluster(
            offered_rate=2.0, admission="queue-threshold", apology_budget=1.0,
            shed_threshold=0.3,
        )
        result = system.run_open_loop(traffic)
        profile = traffic_profile(system.events)
        assert profile.offered == result.traffic.offered_streams
        assert profile.admitted == result.traffic.admitted_streams
        assert profile.shed_frames == result.traffic.shed_frames
        assert profile.arrival_rate(0.0, traffic.duration_s) > 0.0

    def test_shedding_renders_apology_responses(self):
        system, traffic = _open_loop_cluster(
            offered_rate=2.5, apology_budget=2.0, shed_threshold=0.3
        )
        result = system.run_open_loop(traffic)
        stats = result.traffic
        assert stats.shed_frames > 0
        assert stats.apologies_spent == stats.shed_frames
        assert stats.completed_frames + stats.shed_frames == stats.admitted_frames
        sheds = system.events.of_kind("frame_shed")
        assert len(sheds) == stats.shed_frames


class TestOpenLoopSingle:
    def test_single_deployment_open_loop(self):
        def go():
            system = CroesusSystem(CroesusConfig(seed=9))
            traffic = TrafficConfig(
                offered_rate=0.5, duration_s=8.0, mean_frames=5, frame_interval=0.5
            )
            result = system.run_open_loop(traffic)
            return result

        first, second = go(), go()
        assert first.traffic.offered_streams > 0
        assert first.traffic.completed_frames > 0
        assert first.makespan == second.makespan
        assert first.goodput_fps == second.goodput_fps
        assert first.latency_percentiles()["p99_ms"] >= first.latency_percentiles()["p50_ms"]

    def test_single_admission_rejects_under_backlog(self):
        system = CroesusSystem(CroesusConfig(seed=9))
        traffic = TrafficConfig(
            offered_rate=3.0, duration_s=8.0, mean_frames=8, frame_interval=0.25,
            admission="queue-threshold",
        )
        result = system.run_open_loop(traffic)
        assert result.traffic.rejected_streams > 0


# -- failure injection --------------------------------------------------------
class TestFailureInjector:
    def test_scheduled_mode_passes_through(self):
        injector = FailureInjector(schedule=())
        assert injector.draw_schedule(2, 10.0, rng=None) == ()

    def test_hazard_excludes_explicit_schedule(self):
        from repro.cluster.failure import FailureSpec

        with pytest.raises(ValueError, match="mutually"):
            FailureInjector(
                schedule=(FailureSpec(0, 1.0, 2.0),), hazard_rate=0.5
            )

    def test_hazard_draws_are_valid_and_seeded(self):
        injector = FailureInjector(hazard_rate=1.0, outage_s=0.5)

        def draw():
            return injector.draw_schedule(3, 20.0, rng=np.random.default_rng(4))

        first, second = draw(), draw()
        assert first == second
        assert len(first) > 0
        for spec in first:
            assert 0 <= spec.edge_id < 3
            assert spec.fail_at < 20.0
            assert spec.recover_at == pytest.approx(spec.fail_at + 0.5)
        # windows are disjoint (validate_failure_schedule enforced)
        ordered = sorted(first, key=lambda s: s.fail_at)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.fail_at >= earlier.recover_at

    def test_hazard_cluster_run_is_deterministic(self):
        config = ClusterConfig(
            base=CroesusConfig(seed=5), num_edges=3, frame_interval=0.5,
            failure_hazard_rate=0.8, failure_outage_s=1.0,
        )

        def go():
            streams = make_camera_streams(6, num_frames=10, seed=5)
            return ClusterSystem(config).run(streams)

        first, second = go(), go()
        assert [f.failed_at for f in first.failures] == [
            f.failed_at for f in second.failures
        ]
        assert len(first.failures) > 0
        assert first.makespan == second.makespan


class TestFailback:
    def test_streams_return_to_recovered_edge(self):
        config = ClusterConfig(
            base=CroesusConfig(seed=2022), num_edges=2, frame_interval=0.5,
            failure_schedule=((0, 2.0, 3.0),), failback=True,
            migration_high=0.05, migration_low=0.05,
        )
        system = ClusterSystem(config)
        traffic = TrafficConfig(offered_rate=1.5, duration_s=8.0, mean_frames=10,
                                frame_interval=0.5)
        result = system.run_open_loop(traffic)
        back = [
            event for event in system.events.of_kind("stream_migrated")
            if event.payload.get("reason") == "edge_recovered"
        ]
        assert len(result.failures) == 1
        assert back, "no stream migrated back to the recovered edge"
        assert all(event.payload["to_edge"] == 0 for event in back)
        assert all(event.timestamp >= result.failures[0].recovered_at for event in back)

    def test_failback_off_by_default(self):
        config = ClusterConfig(
            base=CroesusConfig(seed=2022), num_edges=2, frame_interval=0.5,
            failure_schedule=((0, 2.0, 3.0),),
            migration_high=0.05, migration_low=0.05,
        )
        system = ClusterSystem(config)
        traffic = TrafficConfig(offered_rate=1.5, duration_s=8.0, mean_frames=10,
                                frame_interval=0.5)
        system.run_open_loop(traffic)
        back = [
            event for event in system.events.of_kind("stream_migrated")
            if event.payload.get("reason") == "edge_recovered"
        ]
        assert back == []


# -- spec / report / runner ---------------------------------------------------
class TestSpecAndReport:
    def test_traffic_spec_round_trips(self):
        spec = ScenarioSpec(
            deployment="cluster", traffic="flash-crowd", offered_rate=1.2,
            duration_s=10.0, peak_factor=3.0, stream_length="geometric",
            admission="token-bucket", admission_rate=0.8, shed_threshold=0.7,
            apology_budget=1.5, failback=True, failure_hazard_rate=0.2,
            failure_outage_s=0.5,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_traffic_requires_cluster_deployment(self):
        with pytest.raises(ValueError, match="cluster"):
            ScenarioSpec(deployment="single", traffic="poisson")

    def test_invalid_traffic_axes_raise(self):
        with pytest.raises(ValueError, match="traffic"):
            ScenarioSpec(deployment="cluster", traffic="bursty")
        with pytest.raises(ValueError, match="admission"):
            ScenarioSpec(deployment="cluster", admission="drop-all")
        with pytest.raises(ValueError, match="hazard"):
            ScenarioSpec(deployment="cluster", failure_hazard_rate=-1.0)
        with pytest.raises(ValueError, match="mutually"):
            ScenarioSpec(
                deployment="cluster", failure_hazard_rate=0.5,
                failure_schedule=((1, 1.0, 2.0),),
            )
        with pytest.raises(ValueError, match="2 edges"):
            ScenarioSpec(deployment="cluster", num_edges=1, failure_hazard_rate=0.5)

    def test_build_traffic_config_mirrors_spec(self):
        spec = ScenarioSpec(
            deployment="cluster", traffic="diurnal", offered_rate=0.7,
            duration_s=12.0, frames=9, fps=4.0, admission="queue-threshold",
        )
        traffic = build_traffic_config(spec)
        assert traffic.process == "diurnal"
        assert traffic.offered_rate == 0.7
        assert traffic.mean_frames == 9
        assert traffic.frame_interval == pytest.approx(0.25)
        assert traffic.admission == "queue-threshold"

    def test_build_traffic_config_rejects_closed_loop(self):
        with pytest.raises(ValueError, match="no traffic"):
            build_traffic_config(ScenarioSpec(deployment="cluster"))

    def test_open_loop_report_round_trips_and_validates(self):
        report = run(
            ScenarioSpec(
                deployment="cluster", traffic="poisson", offered_rate=0.6,
                duration_s=6.0, num_edges=2, frames=6, fps=2.0, seed=2022,
            )
        )
        payload = report.to_dict()
        validate_report(payload)
        assert payload["traffic"] is not None
        assert payload["goodput_fps"] > 0
        rebuilt = type(report).from_dict(payload)
        assert rebuilt.traffic == report.traffic

    def test_closed_loop_report_fills_load_from_throughput(self):
        report = run(
            ScenarioSpec(deployment="cluster", num_edges=2, streams=4, frames=6, seed=11)
        )
        assert report.traffic is None
        assert report.offered_load_fps == report.throughput_fps
        assert report.admitted_load_fps == report.throughput_fps
        assert report.goodput_fps == report.throughput_fps
        assert report.shed_rate == 0.0
        assert report.p99_latency_ms >= report.p50_latency_ms > 0


# -- sustained-overload acceptance --------------------------------------------
def _overload_spec(**overrides) -> ScenarioSpec:
    base = dict(
        deployment="cluster", traffic="poisson", offered_rate=2.2,
        duration_s=12.0, num_edges=2, frames=10, fps=2.0, seed=2022,
        admission="queue-threshold", admission_rate=0.85,
        apology_budget=2.0, shed_threshold=0.9,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture(scope="module")
def overload_cells():
    """Control and no-control runs at ~2x capacity, two run lengths each."""
    return {
        "control": run(_overload_spec()),
        "control_long": run(_overload_spec(duration_s=24.0)),
        "baseline": run(_overload_spec(admission="none", apology_budget=None)),
        "baseline_long": run(
            _overload_spec(admission="none", apology_budget=None, duration_s=24.0)
        ),
    }


class TestSustainedOverloadAcceptance:
    def test_offered_load_is_at_least_twice_capacity(self, overload_cells):
        capacity = overload_cells["baseline_long"].goodput_fps
        steady_offered = 2.2 * 10  # streams/s x frames/stream at 2 fps
        assert steady_offered >= 2.0 * capacity

    def test_control_goodput_within_15pct_of_capacity(self, overload_cells):
        capacity = overload_cells["baseline_long"].goodput_fps
        assert overload_cells["control_long"].goodput_fps >= 0.85 * capacity

    def test_control_p99_is_bounded(self, overload_cells):
        short = overload_cells["control"].p99_latency_ms
        long = overload_cells["control_long"].p99_latency_ms
        assert long <= 1.5 * short

    def test_baseline_p99_grows_with_run_length(self, overload_cells):
        short = overload_cells["baseline"].p99_latency_ms
        long = overload_cells["baseline_long"].p99_latency_ms
        assert long >= 1.5 * short

    def test_control_sheds_and_rejects_under_overload(self, overload_cells):
        control = overload_cells["control_long"]
        assert control.shed_rate > 0.0
        assert control.traffic["rejected_streams"] > 0
        baseline = overload_cells["baseline_long"]
        assert baseline.shed_rate == 0.0
        assert baseline.traffic["rejected_streams"] == 0
