"""Tests for the simulated detectors."""

import numpy as np
import pytest

from repro.detection.models import SimulatedDetector
from repro.detection.profiles import CLOUD_YOLOV3_416, EDGE_TINY_YOLOV3, ModelProfile

from helpers import make_frame, make_scene_object


def _perfect_profile() -> ModelProfile:
    return ModelProfile(
        name="perfect",
        recall=1.0,
        mislabel_rate=0.0,
        false_positive_rate=0.0,
        box_noise=0.0,
        confidence_correct=0.95,
        confidence_error=0.4,
        confidence_spread=0.0,
        inference_latency=0.1,
        latency_jitter=0.0,
    )


def _blind_profile() -> ModelProfile:
    return ModelProfile(
        name="blind",
        recall=0.0,
        mislabel_rate=0.0,
        false_positive_rate=0.0,
        box_noise=0.0,
        confidence_correct=0.9,
        confidence_error=0.4,
        confidence_spread=0.0,
        inference_latency=0.05,
        latency_jitter=0.0,
    )


class TestSimulatedDetector:
    def test_perfect_detector_finds_every_object(self, rng):
        detector = SimulatedDetector(_perfect_profile(), rng)
        frame = make_frame(0, make_scene_object(0, "dog"), make_scene_object(1, "dog", x=400))
        labels, latency = detector.detect(frame)
        assert len(labels) == 2
        assert set(labels.names()) == {"dog"}
        assert latency > 0

    def test_blind_detector_finds_nothing(self, rng):
        detector = SimulatedDetector(_blind_profile(), rng)
        frame = make_frame(0, make_scene_object(0, "dog"))
        labels, _ = detector.detect(frame)
        assert len(labels) == 0

    def test_latency_matches_profile_mean(self, rng):
        detector = SimulatedDetector(_perfect_profile(), rng)
        frame = make_frame(0, make_scene_object(0))
        latencies = [detector.detect(frame)[1] for _ in range(50)]
        assert np.mean(latencies) == pytest.approx(0.1, abs=0.01)

    def test_latency_scale_multiplies(self, rng):
        slow = SimulatedDetector(_perfect_profile(), rng, latency_scale=3.0)
        frame = make_frame(0, make_scene_object(0))
        latencies = [slow.detect(frame)[1] for _ in range(30)]
        assert np.mean(latencies) == pytest.approx(0.3, abs=0.03)

    def test_latency_scale_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            SimulatedDetector(_perfect_profile(), rng, latency_scale=0.0)

    def test_detections_carry_ground_truth_object_id(self, rng):
        detector = SimulatedDetector(_perfect_profile(), rng)
        frame = make_frame(0, make_scene_object(7, "dog"))
        labels, _ = detector.detect(frame)
        assert labels.detections[0].object_id == 7

    def test_edge_model_is_less_accurate_than_cloud(self, rngs):
        """Across many frames, the cloud profile should recall more objects."""
        edge = SimulatedDetector(EDGE_TINY_YOLOV3, rngs.stream("edge"))
        cloud = SimulatedDetector(CLOUD_YOLOV3_416, rngs.stream("cloud"))
        frames = [
            make_frame(i, make_scene_object(i, "person", visibility=0.85, difficulty=1.4))
            for i in range(120)
        ]
        edge_hits = sum(
            1
            for frame in frames
            for d in edge.detect(frame)[0]
            if d.object_id is not None and d.name == "person"
        )
        cloud_hits = sum(
            1
            for frame in frames
            for d in cloud.detect(frame)[0]
            if d.object_id is not None and d.name == "person"
        )
        assert cloud_hits > edge_hits

    def test_confidences_within_bounds(self, rng):
        detector = SimulatedDetector(EDGE_TINY_YOLOV3, rng)
        frame = make_frame(0, *[make_scene_object(i, x=50 + 100 * i) for i in range(5)])
        for _ in range(20):
            labels, _ = detector.detect(frame)
            assert all(0.0 < d.confidence < 1.0 for d in labels)

    def test_deterministic_given_same_stream(self):
        frame = make_frame(0, make_scene_object(0))
        first = SimulatedDetector(EDGE_TINY_YOLOV3, np.random.default_rng(5)).detect(frame)
        second = SimulatedDetector(EDGE_TINY_YOLOV3, np.random.default_rng(5)).detect(frame)
        assert first[0].names() == second[0].names()
        assert first[1] == second[1]

    def test_name_and_profile_accessors(self, rng):
        detector = SimulatedDetector(EDGE_TINY_YOLOV3, rng)
        assert detector.name == "tiny-yolov3"
        assert detector.profile is EDGE_TINY_YOLOV3
