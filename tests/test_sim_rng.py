"""Tests for the deterministic RNG registry."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("edge") is rngs.stream("edge")

    def test_different_names_are_independent(self):
        rngs = RngRegistry(seed=1)
        a = rngs.stream("edge").random(5)
        b = rngs.stream("cloud").random(5)
        assert not (a == b).all()

    def test_same_seed_reproduces_values(self):
        first = RngRegistry(seed=9).stream("edge").random(10)
        second = RngRegistry(seed=9).stream("edge").random(10)
        assert (first == second).all()

    def test_different_seeds_differ(self):
        first = RngRegistry(seed=1).stream("edge").random(10)
        second = RngRegistry(seed=2).stream("edge").random(10)
        assert not (first == second).all()

    def test_adding_stream_does_not_perturb_existing(self):
        """Draw order of one stream must not depend on other streams existing."""
        plain = RngRegistry(seed=3)
        values_before = plain.stream("edge").random(5)

        interleaved = RngRegistry(seed=3)
        interleaved.stream("other").random(100)
        values_after = interleaved.stream("edge").random(5)
        assert (values_before == values_after).all()

    def test_reset_reseeds_streams(self):
        rngs = RngRegistry(seed=4)
        first = rngs.stream("edge").random(3)
        rngs.reset()
        second = rngs.stream("edge").random(3)
        assert (first == second).all()

    def test_seed_property(self):
        assert RngRegistry(seed=11).seed == 11
