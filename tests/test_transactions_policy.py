"""Policy-conformance suite: one contract, every registered policy.

The :class:`~repro.transactions.policy.TransactionPolicy` seam promises
that swapping the commit policy changes *when and what the coordinator
pays*, never what the transactions compute: section ordering is still
enforced, committed writes still land, MS-SR still aborts conflicting
concurrents, seeded runs are still deterministic — and the default
immediate policy is bit-for-bit the legacy code path (the golden pin).
Every test that can be is parametrized over all of
:data:`~repro.transactions.policy.TXN_POLICIES`.
"""

import pytest

from repro.experiments import ScenarioSpec, run
from repro.network.channel import Channel
from repro.network.latency import SAME_REGION
from repro.sim.rng import RngRegistry
from repro.storage.partition import PartitionedStore
from repro.transactions.distributed import (
    DistributedMSIAController,
    DistributedTwoStage2PL,
)
from repro.transactions.exceptions import SectionOrderError, TransactionAborted
from repro.transactions.model import MultiStageTransaction, SectionKind, SectionSpec
from repro.transactions.ops import ReadWriteSet
from repro.transactions.policy import (
    TXN_POLICIES,
    BatchedTwoPhasePolicy,
    ImmediatePolicy,
    PolicyStats,
    TransactionPolicy,
    make_policy,
)


def _write_transaction(txn_id: str, initial_keys: set[str], final_keys: set[str]):
    """A transaction writing ``initial_keys`` then ``final_keys``."""

    def initial(ctx):
        for key in sorted(initial_keys):
            ctx.write(key, f"{txn_id}-initial")
        return txn_id

    def final(ctx):
        for key in sorted(final_keys):
            ctx.write(key, f"{txn_id}-final")

    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(
            body=initial, rwset=ReadWriteSet(writes=frozenset(initial_keys))
        ),
        final=SectionSpec(body=final, rwset=ReadWriteSet(writes=frozenset(final_keys))),
    )


def _spanning_keys(store: PartitionedStore, count: int) -> list[str]:
    """Keys guaranteed to span at least two partitions."""
    keys: list[str] = []
    partitions: set[int] = set()
    index = 0
    while len(keys) < count:
        key = f"pkey-{index}"
        partition = store.partition_for(key).partition_id
        if partition not in partitions or len(partitions) > 1:
            keys.append(key)
            partitions.add(partition)
        index += 1
    return keys


def build_policy(name: str, consistency: str = "ms-ia", partitions: int = 4) -> TransactionPolicy:
    store = PartitionedStore(partitions)
    if consistency == "ms-sr":
        controller = DistributedTwoStage2PL(store)
    else:
        controller = DistributedMSIAController(store)
    return make_policy(
        name,
        controller,
        owned_partitions=frozenset({0}),
        channel=Channel(SAME_REGION, RngRegistry(7).stream("coordinator")),
    )


# -- protocol conformance, every policy ---------------------------------------
@pytest.mark.parametrize("policy_name", TXN_POLICIES)
class TestPolicyConformance:
    def test_section_ordering_enforced(self, policy_name):
        policy = build_policy(policy_name)
        txn = _write_transaction("t1", {"pkey-0"}, {"pkey-1"})
        with pytest.raises(SectionOrderError):
            policy.stage(txn, SectionKind.FINAL, now=0.0)

    def test_committed_writes_land_in_the_store(self, policy_name):
        policy = build_policy(policy_name)
        store = policy.controller.store
        keys = _spanning_keys(store, 3)
        txn = _write_transaction("t1", set(keys[:2]), {keys[2]})
        policy.process_initial(txn, now=0.0)
        policy.process_final(txn, now=1.0)
        policy.commit(now=2.0)
        for key in keys[:2]:
            assert store.read(key) == "t1-initial"
        assert store.read(keys[2]) == "t1-final"

    def test_ms_sr_aborts_conflicting_concurrent(self, policy_name):
        """Serializability where promised: under MS-SR the first
        transaction's locks ride out the validation gap, so a concurrent
        writer to the same keys must abort."""
        policy = build_policy(policy_name, consistency="ms-sr")
        keys = set(_spanning_keys(policy.controller.store, 2))
        first = _write_transaction("t1", keys, keys)
        second = _write_transaction("t2", keys, keys)
        policy.process_initial(first, now=0.0)
        with pytest.raises(TransactionAborted):
            policy.process_initial(second, now=0.1)
        assert policy.stats.aborts == 1
        policy.process_final(first, now=1.0)

    def test_ms_ia_releases_locks_between_sections(self, policy_name):
        policy = build_policy(policy_name, consistency="ms-ia")
        keys = set(_spanning_keys(policy.controller.store, 2))
        first = _write_transaction("t1", keys, keys)
        second = _write_transaction("t2", keys, keys)
        policy.process_initial(first, now=0.0)
        policy.process_initial(second, now=0.1)  # no abort: locks released
        policy.process_final(first, now=1.0)
        policy.process_final(second, now=1.1)
        assert policy.stats.aborts == 0
        assert policy.stats.final_commits == 2

    def test_deterministic_under_fixed_seed(self, policy_name):
        spec = ScenarioSpec(
            deployment="cluster",
            num_edges=2,
            streams=2,
            frames=4,
            seed=13,
            consistency="ms-sr",
            transaction_policy=policy_name,
        )
        assert run(spec).to_json() == run(spec).to_json()

    def test_runs_on_both_deployments(self, policy_name):
        """Acceptance: every policy runs single-edge and cluster."""
        single = run(ScenarioSpec(video="v1", frames=4, seed=3, transaction_policy=policy_name))
        cluster = run(
            ScenarioSpec(
                deployment="cluster",
                num_edges=2,
                streams=2,
                frames=3,
                seed=3,
                transaction_policy=policy_name,
            )
        )
        assert single.transaction_policy == policy_name
        assert cluster.transaction_policy == policy_name
        # A single edge has no remote partitions: coordinator-free.
        assert single.coordinator_round_trips == 0


# -- the policies differ only where they should -------------------------------
class TestPolicySemantics:
    @pytest.fixture(scope="class")
    def contention_reports(self):
        def spec(policy):
            return ScenarioSpec(
                deployment="cluster",
                num_edges=4,
                streams=8,
                frames=6,
                seed=2022,
                consistency="ms-sr",
                workload="hotspot",
                hot_key_range=50,
                transaction_policy=policy,
            )

        return {policy: run(spec(policy)) for policy in TXN_POLICIES}

    def test_state_identical_across_policies(self, contention_reports):
        """Policies reschedule coordinator messaging; they never change
        what was detected, validated, or committed."""
        baseline = contention_reports["immediate-2pc"]
        for name, report in contention_reports.items():
            assert report.f_score == baseline.f_score, name
            assert report.frames == baseline.frames, name
            assert report.transactions == baseline.transactions, name
            assert report.cross_partition_txns == baseline.cross_partition_txns, name
            assert report.bandwidth_utilization == baseline.bandwidth_utilization, name

    def test_batched_amortises_round_trips(self, contention_reports):
        """Acceptance: batched 2PC cuts mean coordinator round trips per
        cross-edge transaction versus immediate 2PC."""
        immediate = contention_reports["immediate-2pc"]
        batched = contention_reports["batched-2pc"]
        assert immediate.coordinator_round_trips > 0
        assert batched.coordinator_batches > 0
        assert (
            batched.round_trips_per_cross_partition_txn
            < immediate.round_trips_per_cross_partition_txn
        )

    def test_async_reports_overlap_savings(self, contention_reports):
        async_report = contention_reports["async-2pc"]
        assert async_report.overlap_saved_ms > 0.0
        assert async_report.latency["commit_overlap_saved_ms"] > 0.0
        # Async hides latency; it does not remove messages.
        assert (
            async_report.coordinator_round_trips
            == contention_reports["immediate-2pc"].coordinator_round_trips
        )

    def test_immediate_charges_no_commit_latency(self, contention_reports):
        immediate = contention_reports["immediate-2pc"]
        assert immediate.latency["commit_protocol_ms"] == 0.0
        assert immediate.coordinator_batches == 0


# -- golden pin ---------------------------------------------------------------
class TestImmediateGoldenPin:
    """Immediate 2PC through the new API is byte-for-byte the legacy path."""

    #: The seeded summary pinned since PR 1 — the policy seam must not
    #: move a single bit of it.
    GOLDEN = {
        "frames": 24,
        "makespan_s": 3.5568000021864665,
        "throughput_fps": 6.747638322437729,
        "queue_delay_ms": 786.8335646687067,
        "cross_partition_txns": 22,
        "f_score": 0.5853658536585366,
    }

    def golden_spec(self, **overrides) -> ScenarioSpec:
        base = dict(deployment="cluster", num_edges=2, streams=4, frames=6, seed=11)
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_explicit_immediate_matches_default_byte_for_byte(self):
        default = run(self.golden_spec())
        explicit = run(self.golden_spec(transaction_policy="immediate-2pc"))
        assert default.to_json() == explicit.to_json()

    def test_immediate_matches_the_golden_values(self):
        report = run(self.golden_spec(transaction_policy="immediate-2pc"))
        for key, value in self.GOLDEN.items():
            assert getattr(report, key) == pytest.approx(value, rel=1e-12, abs=1e-12), key
        assert report.latency["commit_protocol_ms"] == 0.0


# -- the policy layer itself --------------------------------------------------
class TestPolicyApi:
    def test_make_policy_rejects_unknown_names(self):
        store = PartitionedStore(1)
        controller = DistributedMSIAController(store)
        with pytest.raises(ValueError, match="known policies"):
            make_policy("three-phase-commit", controller)

    def test_batched_and_async_need_a_channel(self):
        controller = DistributedMSIAController(PartitionedStore(2))
        with pytest.raises(ValueError, match="coordinator channel"):
            make_policy("batched-2pc", controller, owned_partitions=frozenset({0}))
        with pytest.raises(ValueError, match="coordinator channel"):
            make_policy("async-2pc", controller, owned_partitions=frozenset({0}))

    def test_batched_needs_commit_hooks(self):
        class Plain:
            pass

        with pytest.raises(TypeError, match="commit hooks"):
            BatchedTwoPhasePolicy(
                Plain(), frozenset(), Channel(SAME_REGION, RngRegistry(0).stream("c"))
            )

    def test_facade_passes_through_controller_attributes(self):
        policy = build_policy("immediate-2pc")
        assert policy.commit_records == {}
        assert policy.store is policy.controller.store
        assert policy.stats is policy.controller.stats
        with pytest.raises(AttributeError):
            policy.no_such_attribute

    def test_immediate_counts_round_trips_without_charging(self):
        policy = build_policy("immediate-2pc", consistency="ms-ia")
        keys = _spanning_keys(policy.controller.store, 2)
        remote = [key for key in keys if policy.controller.store.partition_for(key).partition_id != 0]
        txn = _write_transaction("t1", set(remote), set(remote))
        policy.process_initial(txn, now=0.0)
        policy.process_final(txn, now=1.0)
        assert policy.policy_stats.coordinator_round_trips > 0
        assert policy.drain_frame_costs() == (0.0, 0.0)

    def test_batched_flushes_on_window_deadline(self):
        policy = build_policy("batched-2pc", consistency="ms-ia")
        store = policy.controller.store
        remote = [
            key
            for key in _spanning_keys(store, 4)
            if store.partition_for(key).partition_id != 0
        ]
        first = _write_transaction("t1", {remote[0]}, {remote[0]})
        policy.process_initial(first, now=0.0)
        assert policy.policy_stats.commit_batches == 0  # still accumulating
        second = _write_transaction("t2", {remote[0]}, {remote[0]})
        # Far past the window: the pending batch flushes before this stage.
        policy.process_initial(second, now=10.0)
        assert policy.policy_stats.commit_batches == 1
        charge, _ = policy.drain_frame_costs()
        assert charge > 0.0
        # End-of-run commit flushes the remainder.
        assert policy.commit(now=20.0) > 0
        assert policy.policy_stats.commit_batches == 2

    def test_policy_stats_snapshot_delta(self):
        stats = PolicyStats(coordinator_round_trips=4, cross_partition_commits=2)
        snap = stats.snapshot()
        stats.coordinator_round_trips += 6
        stats.cross_partition_commits += 1
        delta = stats.since(snap)
        assert delta.coordinator_round_trips == 6
        assert delta.cross_partition_commits == 1
        assert stats.round_trips_per_cross_partition_commit == pytest.approx(10 / 3)

    def test_reset_discards_open_coordinator_state(self):
        """An interrupted run's pending batch must never flush into (and
        be billed to) the next run."""
        policy = build_policy("batched-2pc", consistency="ms-ia")
        store = policy.controller.store
        remote = next(
            key
            for key in _spanning_keys(store, 4)
            if store.partition_for(key).partition_id != 0
        )
        txn = _write_transaction("t1", {remote}, {remote})
        policy.process_initial(txn, now=0.0)
        policy.reset()
        assert policy.commit(now=100.0) == 0  # nothing left to flush
        assert policy.policy_stats.commit_batches == 0
        assert policy.drain_frame_costs() == (0.0, 0.0)
        # Async: issued prepares are discarded too.
        async_policy = build_policy("async-2pc", consistency="ms-ia")
        async_txn = _write_transaction("t1", {remote}, {remote})
        async_policy.process_initial(async_txn, now=0.0)
        async_policy.reset()
        async_policy.process_final(async_txn, now=5.0)
        assert async_policy.drain_frame_costs() == (0.0, 0.0)

    def test_single_edge_history_still_audited_under_new_policies(self):
        """Non-default policies must keep feeding the transaction
        history, so the MS-SR/MS-IA checkers never pass vacuously."""
        from repro.core.config import CroesusConfig
        from repro.core.system import CroesusSystem
        from repro.transactions.checker import check_ms_ia
        from repro.video.library import make_video

        system = CroesusSystem(CroesusConfig(seed=3, transaction_policy="async-2pc"))
        system.run(make_video("v1", num_frames=6, seed=3))
        assert len(system.history) > 0
        assert check_ms_ia(system.history).ok

    def test_cluster_policy_summary_matches_the_report(self):
        from repro.cluster.system import ClusterConfig, ClusterSystem
        from repro.core.config import ConsistencyLevel, CroesusConfig
        from repro.video.library import make_camera_streams

        config = ClusterConfig(
            base=CroesusConfig(
                seed=2022,
                consistency=ConsistencyLevel.MS_SR,
                transaction_policy="batched-2pc",
            ),
            num_edges=4,
        )
        result = ClusterSystem(config).run(make_camera_streams(4, num_frames=4, seed=2022))
        summary = result.policy_summary()
        assert summary["coordinator_round_trips"] == float(result.coordinator_round_trips)
        assert summary["commit_batches"] == float(result.policy_stats.commit_batches)
        assert summary["round_trips_per_cross_edge_txn"] == result.round_trips_per_cross_edge_txn
        # The legacy summary key set stays pinned: no policy keys leak in.
        assert not set(summary) & set(result.summary())

    def test_immediate_policy_wraps_local_controllers(self):
        from repro.storage.kvstore import KeyValueStore
        from repro.transactions.ms_ia import MSIAController

        controller = MSIAController(KeyValueStore())
        policy = ImmediatePolicy(controller)
        txn = _write_transaction("t1", {"a"}, {"b"})
        policy.process_initial(txn, now=0.0)
        policy.process_final(txn, now=1.0)
        assert controller.store.read("b") == "t1-final"
        assert policy.policy_stats.coordinator_round_trips == 0


# -- priority serving ---------------------------------------------------------
class TestPriorityServing:
    """Initial stages preempt queued final stages (engine priority)."""

    def test_registered_scenario_uses_priority_discipline(self):
        from repro.experiments import get_scenario

        assert get_scenario("cluster-priority").edge_discipline == "priority"

    def test_priority_lowers_initial_stage_latency(self):
        from repro.experiments import get_scenario

        priority_spec = get_scenario("cluster-priority")
        fifo_spec = priority_spec.with_(edge_discipline="fifo")
        priority_report = run(priority_spec)
        fifo_report = run(fifo_spec)
        # Initials overtake queued finals: the initial response gets
        # faster, and the displaced finals pay for it.
        assert (
            priority_report.latency["queue_delay_ms"] < fifo_report.latency["queue_delay_ms"]
        )
        assert priority_report.latency["initial_ms"] < fifo_report.latency["initial_ms"]
        assert (
            priority_report.latency["final_queue_delay_ms"]
            > fifo_report.latency["final_queue_delay_ms"]
        )
