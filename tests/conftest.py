"""Shared fixtures for the Croesus test suite.

Object factories live in :mod:`helpers` (``tests/helpers.py``) so test
modules can import them explicitly without relying on ``conftest``
import-path resolution, which breaks when ``benchmarks/conftest.py`` is
collected in the same pytest invocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CroesusConfig
from repro.sim.rng import RngRegistry
from repro.storage.kvstore import KeyValueStore


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(42)


@pytest.fixture
def rngs() -> RngRegistry:
    """A registry of named deterministic streams."""
    return RngRegistry(seed=42)


@pytest.fixture
def store() -> KeyValueStore:
    """An empty key-value store."""
    return KeyValueStore()


@pytest.fixture
def config() -> CroesusConfig:
    """A default Croesus configuration with a fixed seed."""
    return CroesusConfig(seed=7)
