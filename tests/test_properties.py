"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.geometry import BoundingBox, iou, overlap_ratio
from repro.detection.metrics import AccuracyReport, f_score
from repro.core.thresholds import ConfidenceInterval, ThresholdPolicy
from repro.storage.kvstore import KeyValueStore
from repro.storage.locks import LockManager, LockMode
from repro.storage.partition import PartitionedStore
from repro.storage.wal import UndoLog
from repro.transactions.checker import check_ms_ia, check_ms_sr
from repro.transactions.history import History
from repro.transactions.model import MultiStageTransaction, SectionSpec
from repro.transactions.ms_ia import MSIAController
from repro.transactions.ms_sr import TwoStage2PL
from repro.transactions.exceptions import TransactionAborted
from repro.transactions.ops import ReadWriteSet
from repro.transactions.sequencer import Sequencer


# -- geometry ----------------------------------------------------------------

boxes = st.builds(
    lambda x, y, w, h: BoundingBox(x, y, x + w, y + h),
    st.floats(0, 1000),
    st.floats(0, 1000),
    st.floats(0.1, 500),
    st.floats(0.1, 500),
)


@given(boxes, boxes)
def test_iou_is_symmetric_and_bounded(a, b):
    value = iou(a, b)
    assert 0.0 <= value <= 1.0 + 1e-9
    assert abs(value - iou(b, a)) < 1e-9


@given(boxes)
def test_iou_with_self_is_one(box):
    assert iou(box, box) == 1.0


@given(boxes, boxes)
def test_overlap_ratio_dominates_iou(a, b):
    assert overlap_ratio(a, b) >= iou(a, b) - 1e-9


# -- metrics -----------------------------------------------------------------


@given(st.floats(0, 1), st.floats(0, 1))
def test_f_score_bounded_by_min_and_max(precision, recall):
    value = f_score(precision, recall)
    assert 0.0 <= value <= 1.0
    assert value <= max(precision, recall) + 1e-9
    if precision > 0 and recall > 0:
        assert value >= min(precision, recall) - 1e-9 or value > 0


@given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
def test_accuracy_report_metrics_bounded(tp, fp, fn):
    report = AccuracyReport(tp, fp, fn)
    assert 0.0 <= report.precision <= 1.0
    assert 0.0 <= report.recall <= 1.0
    assert 0.0 <= report.f_score <= 1.0


# -- thresholds ----------------------------------------------------------------


@given(
    st.floats(0, 1).flatmap(lambda lo: st.tuples(st.just(lo), st.floats(lo, 1))),
    st.floats(0.001, 0.999),
)
def test_threshold_classification_is_total_and_consistent(pair, confidence):
    policy = ThresholdPolicy(*pair)
    interval = policy.classify(confidence)
    assert interval in ConfidenceInterval
    if interval is ConfidenceInterval.DISCARD:
        assert confidence < policy.lower
    elif interval is ConfidenceInterval.KEEP:
        assert confidence > policy.upper
    else:
        assert policy.lower <= confidence <= policy.upper


# -- key-value store -----------------------------------------------------------


@given(st.lists(st.tuples(st.text(min_size=1, max_size=5), st.integers()), max_size=30))
def test_kvstore_latest_write_wins(writes):
    store = KeyValueStore()
    expected: dict[str, int] = {}
    for key, value in writes:
        store.write(key, value)
        expected[key] = value
    for key, value in expected.items():
        assert store.read(key) == value


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers()), min_size=1, max_size=20))
def test_undo_restores_pre_transaction_state(writes):
    store = KeyValueStore()
    store.write("a", 0)
    store.write("b", 0)
    store.write("c", 0)
    before = store.snapshot()

    log = UndoLog(store)
    for key, value in writes:
        log.log_write("txn", key, value)
        store.write(key, value, writer="txn")
    log.undo("txn")
    assert store.snapshot() == before


# -- locks ---------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["t1", "t2", "t3"]),
            st.sampled_from(["x", "y"]),
            st.sampled_from(list(LockMode)),
        ),
        max_size=30,
    )
)
def test_lock_manager_never_grants_conflicting_locks(requests):
    locks = LockManager()
    granted: dict[str, dict[str, LockMode]] = {}
    for holder, key, mode in requests:
        if locks.try_acquire(holder, key, mode):
            granted.setdefault(key, {})[holder] = mode
            holders = granted[key]
            exclusive_holders = [h for h, m in holders.items() if m is LockMode.EXCLUSIVE]
            if exclusive_holders:
                # An exclusive grant must be the only grant on that key.
                assert len(holders) == 1


# -- multi-stage protocols -------------------------------------------------------


def _counter_transaction(txn_id: str, key: str) -> MultiStageTransaction:
    def initial(ctx):
        value = ctx.read(key, default=0) or 0
        ctx.write(key, value + 1)

    def final(ctx):
        ctx.read(key, default=0)

    rwset = ReadWriteSet(reads=frozenset({key}), writes=frozenset({key}))
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(body=initial, rwset=rwset),
        final=SectionSpec(body=final, rwset=ReadWriteSet(reads=frozenset({key}))),
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=12))
def test_ms_sr_histories_always_satisfy_ms_sr(keys):
    """Whatever interleaving of committed transactions TwoStage2PL allows, the
    recorded history must satisfy the MS-SR conditions, and every increment of
    a committed transaction must be preserved (no lost updates)."""
    store = KeyValueStore()
    history = History()
    controller = TwoStage2PL(store, history=history)
    committed: dict[str, int] = {}
    now = 0.0
    for index, key in enumerate(keys):
        txn = _counter_transaction(f"t{index}", key)
        try:
            controller.process_initial(txn, now=now)
            controller.process_final(txn, now=now + 0.5)
            committed[key] = committed.get(key, 0) + 1
        except TransactionAborted:
            pass
        now += 1.0
    assert check_ms_sr(history)
    for key, count in committed.items():
        assert store.read(key, default=0) == count


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=12))
def test_ms_ia_histories_always_satisfy_ms_ia(keys):
    store = KeyValueStore()
    history = History()
    controller = MSIAController(store, history=history)
    pending = []
    now = 0.0
    for index, key in enumerate(keys):
        txn = _counter_transaction(f"t{index}", key)
        controller.process_initial(txn, now=now)
        pending.append(txn)
        now += 1.0
    # Finals arrive later, in reverse order (worst case for ordering).
    for txn in reversed(pending):
        controller.process_final(txn, now=now)
        now += 1.0
    assert check_ms_ia(history)
    assert controller.stats.aborts == 0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d", "e"]), st.sampled_from(["a", "b", "c", "d", "e"])),
        min_size=1,
        max_size=20,
    )
)
def test_sequencer_waves_are_always_conflict_free(key_pairs):
    transactions = []
    for index, (first_key, second_key) in enumerate(key_pairs):
        rwset = ReadWriteSet(writes=frozenset({first_key, second_key}))
        transactions.append(
            MultiStageTransaction(
                transaction_id=f"t{index}",
                initial=SectionSpec(body=lambda ctx: None, rwset=rwset),
                final=SectionSpec.noop(),
            )
        )
    waves = Sequencer().schedule(transactions)
    scheduled = [txn.transaction_id for wave in waves for txn in wave]
    assert sorted(scheduled) == sorted(t.transaction_id for t in transactions)
    for wave in waves:
        for i, left in enumerate(wave):
            for right in wave[i + 1:]:
                assert not left.conflicts_with(right)


# -- durability (checkpoint + WAL replay) --------------------------------------

#: One step of a durability history: a committed write, or a checkpoint
#: of every partition (None).
_durability_steps = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from([f"key-{i}" for i in range(12)]),
            st.integers(-1000, 1000),
        ),
        st.none(),
    ),
    max_size=40,
)


@given(steps=_durability_steps, partitions=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_checkpoint_plus_replay_reconstructs_the_store_exactly(steps, partitions):
    """Crash-recovering every partition — from whatever mix of committed
    writes and checkpoint points preceded the crash — must reconstruct
    the partitioned store's live state exactly."""
    store = PartitionedStore(num_partitions=partitions)
    expected: dict[str, int] = {}
    for txn_index, step in enumerate(steps):
        if step is None:
            store.checkpoint_all()
            continue
        key, value = step
        store.write(key, value, writer=f"t{txn_index}")
        expected[key] = value

    for partition_id in store.partition_ids():
        store.partition(partition_id).crash()
        outcome = store.partition(partition_id).recover()
        assert outcome.records_replayed >= 0

    recovered = {
        key: store.read(key) for key in expected
    }
    assert recovered == expected
    for partition_id in store.partition_ids():
        assert store.partition(partition_id).available
