"""Tests for accuracy metrics."""

import pytest

from repro.detection.metrics import (
    AccuracyReport,
    aggregate_reports,
    evaluate_detections,
    f_score,
)

from helpers import make_detection, make_label_set


class TestFScore:
    def test_perfect(self):
        assert f_score(1.0, 1.0) == 1.0

    def test_zero_when_both_zero(self):
        assert f_score(0.0, 0.0) == 0.0

    def test_harmonic_mean(self):
        assert f_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_symmetric(self):
        assert f_score(0.3, 0.9) == f_score(0.9, 0.3)


class TestAccuracyReport:
    def test_precision_recall(self):
        report = AccuracyReport(true_positives=8, false_positives=2, false_negatives=4)
        assert report.precision == pytest.approx(0.8)
        assert report.recall == pytest.approx(8 / 12)

    def test_empty_report_is_zero(self):
        report = AccuracyReport(0, 0, 0)
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f_score == 0.0

    def test_merged(self):
        left = AccuracyReport(1, 2, 3)
        right = AccuracyReport(4, 5, 6)
        merged = left.merged(right)
        assert (merged.true_positives, merged.false_positives, merged.false_negatives) == (5, 7, 9)

    def test_aggregate_reports(self):
        total = aggregate_reports([AccuracyReport(1, 0, 0), AccuracyReport(0, 1, 1)])
        assert total.true_positives == 1
        assert total.false_positives == 1
        assert total.false_negatives == 1


class TestEvaluateDetections:
    def test_exact_match_is_perfect(self):
        truth = make_label_set(0, make_detection("person", x=100))
        report = evaluate_detections(truth, truth)
        assert report.f_score == 1.0

    def test_wrong_name_is_false_positive_and_negative(self):
        observed = make_label_set(0, make_detection("dog", x=100))
        truth = make_label_set(0, make_detection("cat", x=100))
        report = evaluate_detections(observed, truth)
        assert report.true_positives == 0
        assert report.false_positives == 1
        assert report.false_negatives == 1

    def test_missed_object_is_false_negative(self):
        observed = make_label_set(0)
        truth = make_label_set(0, make_detection("person"))
        report = evaluate_detections(observed, truth)
        assert report.false_negatives == 1
        assert report.false_positives == 0

    def test_hallucination_is_false_positive(self):
        observed = make_label_set(0, make_detection("person", x=100), make_detection("person", x=700))
        truth = make_label_set(0, make_detection("person", x=100))
        report = evaluate_detections(observed, truth)
        assert report.true_positives == 1
        assert report.false_positives == 1

    def test_each_truth_label_claimed_once(self):
        """Two overlapping predictions of the same object: only one TP."""
        observed = make_label_set(
            0, make_detection("person", x=100), make_detection("person", x=103)
        )
        truth = make_label_set(0, make_detection("person", x=100))
        report = evaluate_detections(observed, truth)
        assert report.true_positives == 1
        assert report.false_positives == 1

    def test_overlap_threshold(self):
        observed = make_label_set(0, make_detection("person", x=100, size=50))
        truth = make_label_set(0, make_detection("person", x=145, size=50))
        strict = evaluate_detections(observed, truth, min_overlap=0.5)
        assert strict.true_positives == 0
        loose = evaluate_detections(observed, truth, min_overlap=0.05)
        assert loose.true_positives == 1
