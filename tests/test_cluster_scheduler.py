"""Tests for frame interleaving and the per-edge server model."""

import pytest

from repro.cluster.scheduler import FrameScheduler
from repro.sim.engine import Server
from repro.video.library import make_camera_streams


def make_streams(count: int, frames: int = 5):
    return make_camera_streams(count, num_frames=frames, seed=0, keys=("v1",))


class TestFrameScheduler:
    def test_arrivals_are_time_ordered(self):
        scheduler = FrameScheduler(frame_interval=0.1)
        streams = make_streams(3)
        arrivals = scheduler.interleave(streams, [0, 1, 0])
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        assert len(arrivals) == 3 * 5

    def test_per_stream_spacing_is_the_frame_interval(self):
        scheduler = FrameScheduler(frame_interval=0.5)
        arrivals = scheduler.interleave(make_streams(2), [0, 1])
        first = [a.arrival_time for a in arrivals if a.stream_index == 0]
        spacing = [b - a for a, b in zip(first, first[1:])]
        assert all(delta == pytest.approx(0.5) for delta in spacing)

    def test_streams_are_phase_shifted(self):
        scheduler = FrameScheduler(frame_interval=0.3)
        arrivals = scheduler.interleave(make_streams(3), [0, 1, 2])
        starts = {a.stream_index: a.arrival_time for a in reversed(arrivals) if a.frame.frame_id == 0}
        assert len(set(starts.values())) == 3

    def test_arrivals_carry_their_placement(self):
        scheduler = FrameScheduler(frame_interval=0.1)
        arrivals = scheduler.interleave(make_streams(2), [1, 0])
        by_stream = {a.stream_name: a.edge_id for a in arrivals}
        assert by_stream == {"cam0-v1": 1, "cam1-v1": 0}

    def test_placement_count_must_match(self):
        scheduler = FrameScheduler(frame_interval=0.1)
        with pytest.raises(ValueError):
            scheduler.interleave(make_streams(2), [0])

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            FrameScheduler(frame_interval=0.0)


class TestEdgeServer:
    """The edge queueing model, now provided by the sim engine's Server."""

    def test_idle_edge_starts_immediately(self):
        server = Server(capacity=1)
        admission = server.admit(1.0)
        assert (admission.start, admission.wait) == (1.0, 0.0)

    def test_busy_edge_queues_the_job(self):
        server = Server(capacity=1)
        server.reserve(0.0, 2.0)
        start, wait = server.reserve(0.5, 1.0)
        assert start == pytest.approx(2.0)
        assert wait == pytest.approx(1.5)

    def test_busy_time_accumulates(self):
        server = Server(capacity=1)
        server.reserve(0.0, 1.0)
        server.reserve(1.0, 0.5)
        assert server.busy_time == pytest.approx(1.5)
        assert server.utilization(3.0) == pytest.approx(0.5)

    def test_wait_statistics(self):
        server = Server(capacity=1)
        server.reserve(0.0, 4.0)
        server.reserve(1.0, 0.0)
        server.reserve(3.0, 0.0)
        assert server.jobs == 3
        assert server.mean_wait == pytest.approx((0.0 + 3.0 + 1.0) / 3)
        assert server.max_wait == pytest.approx(3.0)

    def test_empty_server_statistics(self):
        server = Server(capacity=1)
        assert server.mean_wait == 0.0
        assert server.max_wait == 0.0
        assert server.utilization(0.0) == 0.0

    def test_negative_service_time_rejected(self):
        server = Server(capacity=1)
        admission = server.admit(0.0)
        with pytest.raises(ValueError):
            server.complete(admission, -1.0)
