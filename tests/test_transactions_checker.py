"""Tests for the MS-SR / MS-IA history checkers."""

from repro.transactions.checker import check_ms_ia, check_ms_sr
from repro.transactions.history import History
from repro.transactions.model import SectionKind
from repro.transactions.ops import Operation, OperationKind


def _read(key: str) -> Operation:
    return Operation(OperationKind.READ, key)


def _write(key: str) -> Operation:
    return Operation(OperationKind.WRITE, key, 1)


class TestMSIAChecker:
    def test_valid_history(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0)
        history.record_section("t2", SectionKind.INITIAL, 2.0)
        history.record_section("t1", SectionKind.FINAL, 3.0)
        history.record_section("t2", SectionKind.FINAL, 4.0)
        assert check_ms_ia(history)

    def test_final_before_initial_is_violation(self):
        history = History()
        history.record_section("t1", SectionKind.FINAL, 1.0)
        history.record_section("t1", SectionKind.INITIAL, 2.0)
        result = check_ms_ia(history)
        assert not result
        assert result.violations

    def test_final_without_initial_is_violation(self):
        history = History()
        history.record_section("t1", SectionKind.FINAL, 1.0)
        assert not check_ms_ia(history)

    def test_initial_without_final_is_allowed(self):
        """A transaction whose final section has not run yet is not a violation."""
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0)
        assert check_ms_ia(history)

    def test_interleaved_sections_allowed_under_ms_ia(self):
        """MS-IA permits another transaction's sections between a
        transaction's initial and final sections even when they conflict."""
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_read("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.FINAL, 3.0, operations=(_write("x"),))
        history.record_section("t1", SectionKind.FINAL, 4.0, operations=(_write("x"),))
        assert check_ms_ia(history)


class TestMSSRChecker:
    def test_serial_conflicting_transactions_are_valid(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_read("x"),))
        history.record_section("t1", SectionKind.FINAL, 2.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.INITIAL, 3.0, operations=(_read("x"),))
        history.record_section("t2", SectionKind.FINAL, 4.0, operations=(_write("x"),))
        assert check_ms_sr(history)

    def test_lost_update_anomaly_detected(self):
        """The increment anomaly of §4.2: both initials read x before either
        final writes it — the finals are not ordered next to their initials."""
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_read("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_read("x"),))
        history.record_section("t1", SectionKind.FINAL, 3.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.FINAL, 4.0, operations=(_write("x"),))
        result = check_ms_sr(history)
        assert not result
        assert any("MS-SR(3)" in violation for violation in result.violations)

    def test_final_sections_must_follow_initial_order(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.FINAL, 3.0, operations=(_read("y"),))
        history.record_section("t1", SectionKind.FINAL, 4.0, operations=(_read("y"),))
        result = check_ms_sr(history)
        assert not result
        assert any("MS-SR(2)" in violation for violation in result.violations)

    def test_non_conflicting_transactions_can_interleave(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_write("y"),))
        history.record_section("t2", SectionKind.FINAL, 3.0, operations=(_read("y"),))
        history.record_section("t1", SectionKind.FINAL, 4.0, operations=(_read("x"),))
        assert check_ms_sr(history)

    def test_non_conflicting_final_and_initial_may_reorder(self):
        """MS-SR(3) only applies when s^f_k conflicts with s^i_j."""
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_read("x"),))
        history.record_section("t1", SectionKind.FINAL, 3.0, operations=(_read("z"),))
        history.record_section("t2", SectionKind.FINAL, 4.0, operations=(_read("z"),))
        assert check_ms_sr(history)

    def test_empty_history_is_valid(self):
        assert check_ms_sr(History())
        assert check_ms_ia(History())
