"""Tests for the batch sequencer."""

import numpy as np

from repro.transactions.exceptions import TransactionAborted
from repro.transactions.model import MultiStageTransaction, SectionSpec
from repro.transactions.ms_ia import MSIAController
from repro.transactions.ops import ReadWriteSet
from repro.transactions.sequencer import Sequencer
from repro.workloads.hotspot import HotspotWorkload


def _txn(txn_id: str, keys: set[str]) -> MultiStageTransaction:
    rwset = ReadWriteSet(reads=frozenset(keys), writes=frozenset(keys))
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(body=lambda ctx: None, rwset=rwset),
        final=SectionSpec.noop(),
    )


class TestSequencer:
    def test_non_conflicting_transactions_share_a_wave(self):
        waves = Sequencer().schedule([_txn("a", {"x"}), _txn("b", {"y"}), _txn("c", {"z"})])
        assert len(waves) == 1
        assert len(waves[0]) == 3

    def test_conflicting_transactions_are_separated(self):
        waves = Sequencer().schedule([_txn("a", {"x"}), _txn("b", {"x"})])
        assert len(waves) == 2

    def test_no_wave_contains_conflicting_transactions(self):
        rng = np.random.default_rng(0)
        workload = HotspotWorkload(rng=rng, key_range=10, batch_size=50)
        waves = Sequencer().schedule(workload.build_batch())
        for wave in waves:
            for i, left in enumerate(wave):
                for right in wave[i + 1:]:
                    assert not left.conflicts_with(right)

    def test_all_transactions_scheduled_exactly_once(self):
        rng = np.random.default_rng(1)
        workload = HotspotWorkload(rng=rng, key_range=100, batch_size=30)
        batch = workload.build_batch()
        waves = Sequencer().schedule(batch)
        scheduled = [txn.transaction_id for wave in waves for txn in wave]
        assert sorted(scheduled) == sorted(txn.transaction_id for txn in batch)

    def test_conflicting_transactions_keep_submission_order(self):
        first = _txn("first", {"x"})
        second = _txn("second", {"x"})
        third = _txn("third", {"x"})
        waves = Sequencer().schedule([first, second, third])
        order = [wave[0].transaction_id for wave in waves]
        assert order == ["first", "second", "third"]

    def test_issued_counter(self):
        sequencer = Sequencer()
        sequencer.schedule([_txn("a", {"x"}), _txn("b", {"y"})])
        assert sequencer.issued == 2

    def test_sequenced_waves_never_abort_under_ms_ia(self, store):
        """The paper's 0%-abort configuration: waves are conflict-free, so the
        MS-IA controller never denies a lock."""
        rng = np.random.default_rng(2)
        workload = HotspotWorkload(rng=rng, key_range=5, batch_size=40)
        batch = workload.build_batch()
        controller = MSIAController(store)
        for wave in Sequencer().schedule(batch):
            for txn in wave:
                controller.process_initial(txn)
            for txn in wave:
                controller.process_final(txn)
        assert controller.stats.aborts == 0
        assert controller.stats.final_commits == 40
