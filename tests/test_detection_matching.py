"""Tests for edge-to-cloud label matching (the final-section rules)."""

import pytest

from repro.detection.matching import MatchOutcome, match_labels

from helpers import make_detection, make_label_set


class TestMatchLabels:
    def test_confirmed_when_names_and_boxes_agree(self):
        edge = make_label_set(0, make_detection("person", x=100, y=100))
        cloud = make_label_set(0, make_detection("person", x=105, y=102))
        report = match_labels(edge, cloud)
        assert len(report.matches) == 1
        match = report.matches[0]
        assert match.outcome is MatchOutcome.CONFIRMED
        assert match.was_correct
        assert match.corrected_label is match.edge
        assert report.all_correct

    def test_corrected_when_names_disagree(self):
        edge = make_label_set(0, make_detection("dog", x=100))
        cloud = make_label_set(0, make_detection("cat", x=100))
        report = match_labels(edge, cloud)
        match = report.matches[0]
        assert match.outcome is MatchOutcome.CORRECTED
        assert not match.was_correct
        assert match.corrected_label.name == "cat"
        assert report.corrections_needed == 1

    def test_missing_when_no_cloud_overlap(self):
        edge = make_label_set(0, make_detection("dog", x=0, y=0))
        cloud = make_label_set(0, make_detection("dog", x=900, y=600))
        report = match_labels(edge, cloud)
        match = report.matches[0]
        assert match.outcome is MatchOutcome.MISSING
        assert match.corrected_label is None
        # the far-away cloud label is unmatched and should trigger new work
        assert len(report.unmatched_cloud) == 1

    def test_unmatched_cloud_labels_reported(self):
        edge = make_label_set(0, make_detection("person", x=100))
        cloud = make_label_set(
            0, make_detection("person", x=100), make_detection("person", x=700)
        )
        report = match_labels(edge, cloud)
        assert len(report.unmatched_cloud) == 1
        assert not report.all_correct

    def test_best_overlap_wins_when_multiple_candidates(self):
        edge = make_label_set(0, make_detection("person", x=100, y=100, size=50))
        close = make_detection("close", x=102, y=100, size=50)
        far = make_detection("far", x=130, y=100, size=50)
        cloud = make_label_set(0, far, close)
        report = match_labels(edge, cloud)
        assert report.matches[0].cloud.name == "close"

    def test_overlap_threshold_respected(self):
        edge = make_label_set(0, make_detection("person", x=100, size=50))
        cloud = make_label_set(0, make_detection("person", x=148, size=50))  # ~4% overlap
        strict = match_labels(edge, cloud, min_overlap=0.5)
        assert strict.matches[0].outcome is MatchOutcome.MISSING
        loose = match_labels(edge, cloud, min_overlap=0.01)
        assert loose.matches[0].outcome is MatchOutcome.CONFIRMED

    def test_invalid_overlap_rejected(self):
        edge = make_label_set(0)
        cloud = make_label_set(0)
        with pytest.raises(ValueError):
            match_labels(edge, cloud, min_overlap=1.5)

    def test_empty_edge_labels(self):
        cloud = make_label_set(0, make_detection("person"))
        report = match_labels(make_label_set(0), cloud)
        assert report.matches == ()
        assert len(report.unmatched_cloud) == 1
        assert report.corrections_needed == 0

    def test_empty_cloud_labels(self):
        edge = make_label_set(0, make_detection("person"))
        report = match_labels(edge, make_label_set(0))
        assert report.matches[0].outcome is MatchOutcome.MISSING
        assert report.unmatched_cloud == ()
