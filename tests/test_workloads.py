"""Tests for the YCSB-A and hotspot workload generators."""

import numpy as np
import pytest

from repro.storage.kvstore import KeyValueStore
from repro.transactions.ms_ia import MSIAController
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.ycsb import YCSBWorkload

from helpers import make_detection


class TestYCSBWorkload:
    def _workload(self, seed: int = 0, **kwargs) -> YCSBWorkload:
        return YCSBWorkload(rng=np.random.default_rng(seed), **kwargs)

    def test_operation_count_matches_paper(self):
        """6 operations per transaction, half reads and half writes."""
        txn = self._workload().build_transaction("t1", make_detection("person"))
        reads = len(txn.initial.rwset.reads)
        writes = len(txn.initial.rwset.writes) + len(txn.final.rwset.writes)
        assert reads == 3
        assert writes == 3

    def test_final_section_has_at_least_one_write(self):
        txn = self._workload().build_transaction("t1", make_detection("person"))
        assert len(txn.final.rwset.writes) >= 1

    def test_transaction_runs_through_controller(self):
        store = KeyValueStore()
        controller = MSIAController(store)
        workload = self._workload()
        txn = workload.build_transaction("t1", make_detection("dog"))
        controller.process_initial(txn, labels=make_detection("dog"))
        controller.process_final(txn, labels=make_detection("dog"))
        assert txn.is_committed
        assert len(store) > 0

    def test_corrected_label_triggers_apology(self):
        store = KeyValueStore()
        controller = MSIAController(store)
        txn = self._workload().build_transaction("t1", make_detection("dog"))
        controller.process_initial(txn, labels=make_detection("dog"))
        controller.process_final(txn, labels=make_detection("cat"))
        assert txn.apologies

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self._workload(operations_per_transaction=1)
        with pytest.raises(ValueError):
            self._workload(final_write_fraction=2.0)

    def test_custom_operation_count(self):
        txn = self._workload(operations_per_transaction=10).build_transaction(
            "t1", make_detection("x")
        )
        total_ops = (
            len(txn.initial.rwset.reads)
            + len(txn.initial.rwset.writes)
            + len(txn.final.rwset.writes)
        )
        assert total_ops == 10

    def test_handles_missing_detection(self):
        txn = self._workload().build_transaction("t1", None)
        assert txn.trigger == "ycsb:none"


class TestHotspotWorkload:
    def _workload(self, key_range: int = 10, **kwargs) -> HotspotWorkload:
        return HotspotWorkload(rng=np.random.default_rng(0), key_range=key_range, **kwargs)

    def test_batch_size(self):
        batch = self._workload(batch_size=50).build_batch()
        assert len(batch) == 50

    def test_updates_per_transaction(self):
        txn = self._workload(updates_per_transaction=5).build_transaction()
        total_keys = len(txn.initial.rwset.writes) + len(txn.final.rwset.writes)
        # Random key collisions within a transaction can reduce the count,
        # but it can never exceed the requested number of updates.
        assert 1 <= total_keys <= 5

    def test_keys_restricted_to_hot_range(self):
        workload = self._workload(key_range=3)
        txn = workload.build_transaction()
        for key in txn.combined_rwset().keys:
            index = int(key.split("-")[1])
            assert 0 <= index < 3

    def test_small_key_range_produces_conflicts(self):
        workload = self._workload(key_range=2, batch_size=20)
        batch = workload.build_batch()
        conflicts = sum(
            1
            for i, left in enumerate(batch)
            for right in batch[i + 1:]
            if left.conflicts_with(right)
        )
        assert conflicts > 0

    def test_large_key_range_has_fewer_conflicts(self):
        small = self._workload(key_range=10, batch_size=30).build_batch()
        large = HotspotWorkload(
            rng=np.random.default_rng(0), key_range=100_000, batch_size=30
        ).build_batch()

        def count_conflicts(batch):
            return sum(
                1
                for i, left in enumerate(batch)
                for right in batch[i + 1:]
                if left.conflicts_with(right)
            )

        assert count_conflicts(large) < count_conflicts(small)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            self._workload(key_range=0)
        with pytest.raises(ValueError):
            HotspotWorkload(
                rng=np.random.default_rng(0),
                key_range=5,
                updates_per_transaction=3,
                final_updates=4,
            )

    def test_transaction_ids_unique_across_batches(self):
        workload = self._workload()
        ids = [txn.transaction_id for txn in workload.build_batch() + workload.build_batch()]
        assert len(set(ids)) == len(ids)
