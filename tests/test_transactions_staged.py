"""Tests for generalized m-stage transactions (paper §3.5)."""

import pytest

from repro.storage.locks import LockMode
from repro.transactions.exceptions import SectionOrderError, TransactionAborted
from repro.transactions.model import SectionSpec
from repro.transactions.ops import ReadWriteSet
from repro.transactions.staged import StagedController, StagedTransaction


def _staged_counter(txn_id: str, key: str, stages: int = 3) -> StagedTransaction:
    """Each stage appends its index to a list stored under ``key``."""

    def make_section(stage: int) -> SectionSpec:
        def body(ctx, _stage=stage):
            values = ctx.read(key, default=[]) or []
            ctx.write(key, values + [_stage])
            return _stage

        return SectionSpec(
            body=body, rwset=ReadWriteSet(reads=frozenset({key}), writes=frozenset({key}))
        )

    return StagedTransaction(
        transaction_id=txn_id, sections=tuple(make_section(s) for s in range(stages))
    )


class TestStagedTransaction:
    def test_requires_at_least_two_sections(self):
        with pytest.raises(ValueError):
            StagedTransaction(transaction_id="t", sections=(SectionSpec.noop(),))

    def test_two_stage_special_case(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k", stages=2)
        controller.process_stage(txn, 0)
        controller.process_stage(txn, 1)
        assert txn.is_fully_committed
        assert store.read("k") == [0, 1]


class TestStagedController:
    def test_stages_run_in_order(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k", stages=4)
        for stage in range(4):
            controller.process_stage(txn, stage)
        assert store.read("k") == [0, 1, 2, 3]
        assert txn.is_fully_committed
        assert controller.stats.initial_commits == 1
        assert controller.stats.final_commits == 1

    def test_out_of_order_stage_rejected(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k")
        with pytest.raises(SectionOrderError):
            controller.process_stage(txn, 1)

    def test_stage_cannot_run_twice(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k")
        controller.process_stage(txn, 0)
        with pytest.raises(SectionOrderError):
            controller.process_stage(txn, 0)

    def test_locks_released_between_stages(self, store):
        controller = StagedController(store)
        first = _staged_counter("t1", "k")
        second = _staged_counter("t2", "k")
        controller.process_stage(first, 0)
        # A conflicting transaction can start before t1 finishes its stages.
        controller.process_stage(second, 0)
        assert store.read("k") == [0, 0]

    def test_initial_stage_lock_denial_aborts(self, store):
        controller = StagedController(store)
        controller.lock_manager.try_acquire("other", "k", LockMode.EXCLUSIVE)
        txn = _staged_counter("t1", "k")
        with pytest.raises(TransactionAborted):
            controller.process_stage(txn, 0)
        assert txn.aborted

    def test_later_stage_lock_denial_is_retryable(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k")
        controller.process_stage(txn, 0)
        controller.lock_manager.try_acquire("other", "k", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionAborted):
            controller.process_stage(txn, 1)
        assert not txn.aborted
        controller.lock_manager.release_all("other")
        controller.process_stage(txn, 1)
        assert txn.committed_stages == 2

    def test_handoff_flows_through_all_stages(self, store):
        def stage0(ctx):
            ctx.put_handoff("seen", ["stage0"])

        def stage1(ctx):
            ctx.put_handoff("seen", ctx.get_handoff("seen") + ["stage1"])

        def stage2(ctx):
            return ctx.get_handoff("seen")

        txn = StagedTransaction(
            transaction_id="t1",
            sections=(
                SectionSpec(body=stage0),
                SectionSpec(body=stage1),
                SectionSpec(body=stage2),
            ),
        )
        controller = StagedController(store)
        controller.process_stage(txn, 0)
        controller.process_stage(txn, 1)
        result = controller.process_stage(txn, 2)
        assert result == ["stage0", "stage1"]

    def test_apologies_accumulate(self, store):
        def apologetic(ctx):
            ctx.apologize("sorry")

        txn = StagedTransaction(
            transaction_id="t1",
            sections=(SectionSpec.noop(), SectionSpec(body=apologetic), SectionSpec(body=apologetic)),
        )
        controller = StagedController(store)
        controller.finish_remaining(txn)
        assert txn.apologies == ("sorry", "sorry")

    def test_finish_remaining_runs_all_outstanding_stages(self, store):
        controller = StagedController(store)
        txn = _staged_counter("t1", "k", stages=5)
        controller.process_stage(txn, 0)
        results = controller.finish_remaining(txn)
        assert len(results) == 4
        assert txn.is_fully_committed
