"""Tests for the discrete-event engine primitives."""

import pytest

from repro.sim.engine import At, Engine, Server, SimulationError


class TestEngineOrdering:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_ties_fire_in_schedule_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(1.0, lambda tag=tag: order.append(tag))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_priority_jumps_same_time_ties(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("late"), priority=1)
        engine.schedule(1.0, lambda: order.append("early"), priority=0)
        engine.schedule(1.0, lambda: order.append("urgent"), priority=-1)
        engine.run()
        assert order == ["urgent", "early", "late"]

    def test_run_returns_makespan(self):
        engine = Engine()
        engine.schedule(4.5, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.run() == pytest.approx(4.5)

    def test_run_until_stops_the_clock(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        assert engine.run(until=5.0) == pytest.approx(5.0)
        assert fired == [1]

    def test_rejects_scheduling_in_the_past(self):
        engine = Engine(start=5.0)
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)


class TestProcess:
    def test_process_yields_delays(self):
        engine = Engine()
        seen = []

        def worker():
            seen.append(engine.now)
            yield 1.5
            seen.append(engine.now)
            yield 0.5
            seen.append(engine.now)

        engine.spawn(worker())
        engine.run()
        assert seen == pytest.approx([0.0, 1.5, 2.0])

    def test_process_yields_absolute_times(self):
        engine = Engine()
        seen = []

        def worker():
            yield engine.at(3.0)
            seen.append(engine.now)

        engine.spawn(worker(), at=1.0)
        engine.run()
        assert seen == [3.0]

    def test_process_return_value_and_join(self):
        engine = Engine()
        seen = []

        def producer():
            yield 2.0
            return "payload"

        def consumer(proc):
            yield proc
            seen.append((engine.now, proc.value))

        proc = engine.spawn(producer())
        engine.spawn(consumer(proc))
        engine.run()
        assert seen == [(2.0, "payload")]

    def test_negative_delay_is_an_error(self):
        engine = Engine()

        def worker():
            yield -1.0

        engine.spawn(worker())
        with pytest.raises(SimulationError):
            engine.run()

    def test_bogus_yield_is_an_error(self):
        engine = Engine()

        def worker():
            yield "soon"

        engine.spawn(worker())
        with pytest.raises(SimulationError):
            engine.run()


class TestServer:
    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            Server(capacity=0)
        with pytest.raises(ValueError):
            Server(capacity=-1)

    def test_unknown_discipline_is_rejected(self):
        with pytest.raises(ValueError):
            Server(discipline="lifo")

    def test_unbounded_server_never_queues(self):
        server = Server(capacity=None)
        for ready in (0.0, 0.1, 0.2):
            start, wait = server.reserve(ready, 10.0)
            assert start == ready
            assert wait == 0.0

    def test_saturated_server_queues_jobs(self):
        server = Server(capacity=1)
        assert server.reserve(0.0, 10.0) == (0.0, 0.0)
        start, wait = server.reserve(1.0, 2.0)
        assert (start, wait) == (10.0, 9.0)
        start, wait = server.reserve(1.5, 1.0)
        assert (start, wait) == (12.0, 10.5)

    def test_multiple_slots_serve_concurrently(self):
        server = Server(capacity=2)
        assert server.reserve(0.0, 5.0) == (0.0, 0.0)
        assert server.reserve(1.0, 5.0) == (1.0, 0.0)
        # both slots busy: third job waits for the earliest slot (t=5)
        assert server.reserve(2.0, 1.0) == (5.0, 3.0)

    def test_saturated_by_open_admissions_raises(self):
        """Jobs holding every slot without a declared service time starve the queue."""
        server = Server(capacity=1)
        held = server.admit(0.0)
        assert held.start == 0.0
        stuck = server.admit(1.0)
        with pytest.raises(SimulationError):
            _ = stuck.start

    def test_priority_discipline_overtakes_pending_jobs(self):
        server = Server(capacity=1, discipline="priority")
        server.reserve(0.0, 10.0)  # occupy the slot
        low = server.admit(1.0, priority=0)
        high = server.admit(2.0, priority=5)
        # resolution happens lazily: the high-priority job gets the slot first
        assert high.start == 10.0
        server.complete(high, 10.0)
        assert low.start == 20.0
        server.complete(low, 1.0)

    def test_fifo_discipline_keeps_request_order(self):
        server = Server(capacity=1, discipline="fifo")
        server.reserve(0.0, 10.0)
        first = server.admit(1.0, priority=0)
        second = server.admit(2.0, priority=5)
        # priority is ignored: the earlier request starts first
        assert first.start == 10.0
        server.complete(first, 5.0)
        assert second.start == 15.0
        server.complete(second, 1.0)

    def test_double_completion_is_rejected(self):
        server = Server(capacity=1)
        admission = server.admit(0.0)
        server.complete(admission, 1.0)
        with pytest.raises(SimulationError):
            server.complete(admission, 1.0)

    def test_windowed_load_observes_recent_busy_time(self):
        server = Server(capacity=1)
        server.reserve(0.0, 1.0)  # busy over [0, 1]
        assert server.load(2.0) == pytest.approx(0.5)  # whole history
        assert server.load(2.0, window=1.0) == pytest.approx(0.0)  # idle lately
        server.reserve(2.0, 4.0)  # busy over [2, 6]
        assert server.load(3.0, window=1.0) == pytest.approx(1.0)
        # future-scheduled service does not count before it happens
        assert server.load(2.0, window=1.0) == pytest.approx(0.0)

    def test_utilization_accounts_for_all_slots(self):
        server = Server(capacity=2)
        server.reserve(0.0, 4.0)
        assert server.utilization(4.0) == pytest.approx(0.5)

    def test_backlog_measures_wait_for_next_free_slot(self):
        server = Server(capacity=1)
        assert server.backlog(0.0) == 0.0  # idle
        server.reserve(0.0, 4.0)  # busy until t=4
        assert server.backlog(1.0) == pytest.approx(3.0)
        assert server.backlog(5.0) == 0.0  # already free

    def test_backlog_uses_earliest_slot(self):
        server = Server(capacity=2)
        server.reserve(0.0, 4.0)
        server.reserve(0.0, 2.0)
        assert server.backlog(1.0) == pytest.approx(1.0)

    def test_backlog_of_unbounded_server_is_zero(self):
        server = Server(capacity=None)
        server.reserve(0.0, 100.0)
        assert server.backlog(1.0) == 0.0
