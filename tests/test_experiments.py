"""Tests for the declarative experiment layer (spec, runner, sweeps, registry)."""

import json

import pytest

from repro.cluster.system import ClusterConfig, ClusterSystem
from repro.core.baselines import run_croesus
from repro.core.config import CroesusConfig
from repro.experiments import (
    ReportSchemaError,
    RunReport,
    ScenarioSpec,
    Sweep,
    SweepAxis,
    build_single_config,
    get_scenario,
    get_sweep,
    list_scenarios,
    list_sweeps,
    register_scenario,
    run,
    validate_report,
)
from repro.video.library import make_camera_streams


def cluster_spec(**overrides) -> ScenarioSpec:
    base = dict(deployment="cluster", num_edges=2, streams=2, frames=4, seed=5)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_round_trip_is_lossless(self):
        spec = ScenarioSpec(
            deployment="cluster",
            system="croesus",
            video="v3",
            frames=12,
            seed=9,
            lower_threshold=0.2,
            upper_threshold=0.8,
            consistency="ms-sr",
            streams=6,
            num_edges=3,
            partitions_per_edge=2,
            router="hotspot",
            fps=10.0,
            cloud_servers=2,
            workload="hotspot",
            hot_key_range=25,
            long_frames=30,
            num_long=1,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_survives_json(self):
        spec = cluster_spec(cloud_servers=None)
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
            ScenarioSpec.from_dict({"video": "v1", "numedges": 4})

    def test_from_dict_fills_defaults(self):
        spec = ScenarioSpec.from_dict({"video": "v2"})
        assert spec.video == "v2"
        assert spec.deployment == "single"
        assert spec.frames == 80

    @pytest.mark.parametrize(
        "overrides",
        [
            {"deployment": "hybrid"},
            {"system": "nope"},
            {"video": "v99"},
            {"frames": 0},
            {"lower_threshold": 0.9, "upper_threshold": 0.2},
            {"consistency": "serializable"},
            {"streams": 0},
            {"num_edges": 0},
            {"partitions_per_edge": 0},
            {"router": "nope"},
            {"fps": 0.0},
            {"cloud_servers": 0},
            {"workload": "tpcc"},
            {"hot_key_range": 0},
            {"long_frames": -1},
            {"num_long": 99},
            {"failure_schedule": ((0, 2.0, 1.0),)},
            {"failure_schedule": ((9, 1.0, 2.0),)},
            {"failure_schedule": ((0, 1.0),)},
            {"num_edges": 1, "failure_schedule": ((0, 1.0, 2.0),)},
            {"checkpoint_interval_s": 0.0},
            {"resharding": ((1.0, 9, 0),)},
            {"resharding": ((1.0, 0, 9),)},
            {"threshold_adaptation": "nope"},
            {"threshold_adaptation": "retune", "system": "edge-only"},
            {"adaptation_interval_s": 0.0},
            {"adaptation_target_f": 0.0},
            {"adaptation_target_f": 1.5},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            ScenarioSpec(**overrides)

    def test_failure_axes_round_trip_through_json(self):
        spec = cluster_spec(
            failure_schedule=((1, 1.0, 2.0),),
            checkpoint_interval_s=0.5,
            resharding=((1.5, 0, 1),),
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        # JSON lists normalise back into the same tuple-of-tuples shape.
        assert rebuilt.failure_schedule == ((1, 1.0, 2.0),)
        assert rebuilt.resharding == ((1.5, 0, 1),)

    def test_with_revalidates(self):
        spec = ScenarioSpec()
        assert spec.with_(num_edges=4).num_edges == 4
        with pytest.raises(ValueError):
            spec.with_(frames=-1)

    def test_frame_interval(self):
        assert cluster_spec(fps=5.0).frame_interval == pytest.approx(0.2)


class TestRunReportSchema:
    @pytest.fixture(scope="class")
    def single_report(self):
        return run(ScenarioSpec(video="v1", frames=10, seed=3))

    @pytest.fixture(scope="class")
    def cluster_report(self):
        return run(cluster_spec())

    def test_single_report_validates(self, single_report):
        validate_report(single_report.to_dict())

    def test_cluster_report_validates(self, cluster_report):
        validate_report(cluster_report.to_dict())

    def test_report_round_trips(self, cluster_report):
        rebuilt = RunReport.from_dict(cluster_report.to_dict())
        assert rebuilt.to_dict() == cluster_report.to_dict()

    def test_missing_key_rejected(self, single_report):
        payload = single_report.to_dict()
        del payload["f_score"]
        with pytest.raises(ReportSchemaError, match="f_score"):
            validate_report(payload)

    def test_wrong_type_rejected(self, single_report):
        payload = single_report.to_dict()
        payload["frames"] = "ten"
        with pytest.raises(ReportSchemaError, match="frames"):
            validate_report(payload)

    def test_incomplete_latency_rejected(self, single_report):
        payload = single_report.to_dict()
        payload["latency"] = {"initial_ms": 1.0}
        with pytest.raises(ReportSchemaError, match="final_ms"):
            validate_report(payload)

    def test_bad_embedded_scenario_rejected(self, single_report):
        payload = single_report.to_dict()
        payload["scenario"] = {"video": "v99"}
        with pytest.raises(ReportSchemaError, match="scenario"):
            validate_report(payload)

    def test_report_is_replayable_from_embedded_scenario(self, cluster_report):
        """A stored report names its own scenario; re-running it reproduces it."""
        replayed = run(ScenarioSpec.from_dict(cluster_report.to_dict()["scenario"]))
        assert replayed.to_json() == cluster_report.to_json()


class TestRunnerSingle:
    def test_matches_the_baseline_runner(self):
        spec = ScenarioSpec(video="v2", frames=10, seed=4)
        report = run(spec)
        baseline = run_croesus(build_single_config(spec), "v2", num_frames=10)
        assert report.f_score == baseline.f_score
        assert report.bandwidth_utilization == baseline.bandwidth_utilization
        assert report.latency["initial_ms"] == baseline.average_initial_latency * 1000.0
        assert report.latency["final_ms"] == baseline.average_final_latency * 1000.0
        assert report.frames == 10
        assert report.transactions == baseline.transactions

    def test_every_single_system_runs(self):
        for system in ("edge-only", "cloud-only", "croesus-compression"):
            report = run(ScenarioSpec(system=system, video="v1", frames=6, seed=2))
            validate_report(report.to_dict())
            assert report.deployment == "single"

    def test_cloud_only_initial_equals_final(self):
        report = run(ScenarioSpec(system="cloud-only", video="v1", frames=6, seed=2))
        assert report.latency["initial_ms"] == report.latency["final_ms"]
        assert report.bandwidth_utilization == 1.0


class TestRunnerCluster:
    def test_matches_a_direct_cluster_run(self):
        spec = cluster_spec(num_edges=3, router="hotspot", frames=5)
        report = run(spec)
        system = ClusterSystem(
            ClusterConfig(
                base=CroesusConfig(seed=spec.seed),
                num_edges=3,
                router_policy="hotspot",
            )
        )
        result = system.run(make_camera_streams(2, num_frames=5, seed=spec.seed))
        assert report.cluster_summary() == result.summary()
        assert report.bandwidth_utilization == result.bandwidth_utilization

    def test_migration_events_recorded(self):
        spec = cluster_spec(
            num_edges=3,
            streams=6,
            frames=10,
            router="migrating",
            fps=5.0,
            long_frames=40,
            seed=2022,
            consistency="ms-sr",
            workload="hotspot",
        )
        report = run(spec)
        assert report.migrations == len(report.migration_events)
        for event in report.migration_events:
            assert set(event) == {"time_s", "stream", "from_edge", "to_edge"}

    def test_finite_cloud_reports_queueing(self):
        report = run(cluster_spec(streams=6, frames=8, cloud_servers=1, seed=2))
        assert report.cloud_queue is not None
        assert report.cloud_queue["validations"] > 0
        assert report.cloud_queue["queued"] > 0
        assert report.cloud_queue_delay_ms > 0.0


class TestDeterminism:
    """Two runs of one spec are bit-for-bit identical — the golden-summary
    pin of PR 2, extended to the new schema."""

    #: Golden summary of the seeded cluster run pinned since PR 1
    #: (seed 11, 2 edges, 4 streams x 6 frames), re-expressed in the
    #: RunReport schema.  These exact values must never drift.
    GOLDEN = {
        "frames": 24,
        "streams": 4,
        "makespan_s": 3.5568000021864665,
        "throughput_fps": 6.747638322437729,
        "queue_delay_ms": 786.8335646687067,
        "cloud_queue_delay_ms": 0.0,
        "cross_partition_fraction": 0.7857142857142857,
        "cross_partition_txns": 22,
        "abort_rate": 0.0,
        "f_score": 0.5853658536585366,
        "migrations": 0,
    }

    def golden_spec(self) -> ScenarioSpec:
        return ScenarioSpec(deployment="cluster", num_edges=2, streams=4, frames=6, seed=11)

    def test_seeded_cluster_report_matches_golden_values(self):
        report = run(self.golden_spec())
        for key, value in self.GOLDEN.items():
            assert getattr(report, key) == pytest.approx(value, rel=1e-12, abs=1e-12), key
        assert report.max_utilization == pytest.approx(0.6918158752054603, rel=1e-12)

    def test_cluster_json_is_deterministic(self):
        first = run(self.golden_spec()).to_json()
        second = run(self.golden_spec()).to_json()
        assert first == second

    def test_single_json_is_deterministic(self):
        spec = ScenarioSpec(video="v4", frames=12, seed=6)
        assert run(spec).to_json() == run(spec).to_json()

    def test_spec_round_trip_preserves_the_run(self):
        spec = self.golden_spec()
        assert run(ScenarioSpec.from_dict(spec.to_dict())).to_json() == run(spec).to_json()


class TestSweep:
    def test_points_cross_product(self):
        sweep = Sweep(
            base=cluster_spec(),
            axes=(SweepAxis("num_edges", (1, 2)), SweepAxis("router", ("round-robin", "hotspot"))),
        )
        assert sweep.points() == [
            {"num_edges": 1, "router": "round-robin"},
            {"num_edges": 1, "router": "hotspot"},
            {"num_edges": 2, "router": "round-robin"},
            {"num_edges": 2, "router": "hotspot"},
        ]

    def test_and_axis_extends_the_cross_product(self):
        sweep = Sweep(base=cluster_spec(), axis="num_edges", values=[1, 2]).and_axis(
            "router", ["round-robin", "hotspot"]
        )
        assert len(sweep.points()) == 4

    def test_rejects_unknown_axis_and_duplicates(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            Sweep(axis="edges", values=[1])
        with pytest.raises(ValueError, match="duplicate"):
            Sweep(base=cluster_spec(), axis="num_edges", values=[1]).and_axis("num_edges", [2])
        with pytest.raises(ValueError, match="at least one axis"):
            Sweep(base=cluster_spec())

    def test_default_base_follows_the_axis(self):
        assert Sweep(axis="num_edges", values=[1]).base.deployment == "cluster"
        assert Sweep(axis="lower_threshold", values=[0.1]).base.deployment == "single"

    def test_cluster_axis_over_single_base_is_rejected(self):
        """N bit-identical single-edge cells are not a scale-out series."""
        with pytest.raises(ValueError, match="cluster"):
            Sweep(base=ScenarioSpec(video="v1"), axis="num_edges", values=[1, 2])
        # Shared fields over a cluster base are fine.
        assert Sweep(base=cluster_spec(), axis="lower_threshold", values=[0.1]).points()

    def test_num_edges_sweep_reproduces_direct_runs(self):
        """Acceptance: the generalized sweep reproduces the bespoke loop."""
        base = cluster_spec(streams=4, frames=5, seed=7)
        result = Sweep(base=base, axis="num_edges", values=[1, 2, 4]).run()
        for edges in (1, 2, 4):
            direct = ClusterSystem(
                ClusterConfig(base=CroesusConfig(seed=7), num_edges=edges)
            ).run(make_camera_streams(4, num_frames=5, seed=7))
            report = result.report_at(num_edges=edges)
            assert report is not None
            assert report.cluster_summary() == direct.summary()

    def test_report_at_and_series(self):
        base = cluster_spec(frames=3)
        result = Sweep(base=base, axis="num_edges", values=[1, 2]).run()
        assert result.report_at(num_edges=1) is not None
        assert result.report_at(num_edges=8) is None
        with pytest.raises(KeyError):
            result.report_at(router="hotspot")
        series = result.series("throughput_fps", axis="num_edges")
        assert [edges for edges, _ in series] == [1, 2]
        assert all(isinstance(value, float) for _, value in series)

    def test_heatmap_accessor(self):
        result = Sweep(
            base=ScenarioSpec(video="v1", frames=6, seed=1),
            axes=(
                SweepAxis("lower_threshold", (0.0, 0.4)),
                SweepAxis("upper_threshold", (0.6, 0.8)),
            ),
        ).run()
        heatmap = result.heatmap("bandwidth_utilization", "lower_threshold", "upper_threshold")
        assert set(heatmap) == {(0.0, 0.6), (0.0, 0.8), (0.4, 0.6), (0.4, 0.8)}
        assert all(0.0 <= value <= 1.0 for value in heatmap.values())

    def test_skip_invalid_records_skipped_cells(self):
        result = Sweep(
            base=ScenarioSpec(video="v1", frames=4, seed=1),
            axes=(
                SweepAxis("lower_threshold", (0.0, 0.8)),
                SweepAxis("upper_threshold", (0.2, 0.9)),
            ),
            skip_invalid=True,
        ).run()
        # (0.8, 0.2) is the one invalid pair of the grid.
        assert len(result.cells) == 3
        assert result.skipped == ({"lower_threshold": 0.8, "upper_threshold": 0.2},)

    def test_skip_invalid_covers_mistyped_axis_values(self):
        """A string value hitting a numeric validation is skipped, not a crash."""
        result = Sweep(
            base=cluster_spec(frames=3),
            axis="num_edges",
            values=["two", 1],
            skip_invalid=True,
        ).run()
        assert len(result.cells) == 1
        assert result.skipped == ({"num_edges": "two"},)

    def test_invalid_cell_raises_without_skip(self):
        sweep = Sweep(
            base=ScenarioSpec(video="v1", frames=4, seed=1),
            axes=(
                SweepAxis("lower_threshold", (0.8,)),
                SweepAxis("upper_threshold", (0.2,)),
            ),
        )
        with pytest.raises(ValueError):
            sweep.run()

    def test_parallel_run_is_identical_to_serial(self):
        """Acceptance: a process-pool sweep reproduces the serial result
        cell for cell, byte for byte."""
        sweep = Sweep(base=cluster_spec(frames=3), axis="num_edges", values=[1, 2, 3])
        serial = sweep.run()
        parallel = sweep.run(max_workers=2)
        assert parallel.to_json() == serial.to_json()
        assert [cell.assignment for cell in parallel] == [cell.assignment for cell in serial]

    def test_max_workers_one_stays_serial(self):
        sweep = Sweep(base=cluster_spec(frames=3), axis="num_edges", values=[1])
        assert sweep.run(max_workers=1).to_json() == sweep.run().to_json()

    def test_to_dict_serialises_every_cell(self):
        result = Sweep(base=cluster_spec(frames=3), axis="num_edges", values=[1]).run()
        payload = json.loads(result.to_json())
        assert payload["axes"] == [{"field": "num_edges", "values": [1]}]
        assert len(payload["cells"]) == 1
        validate_report(payload["cells"][0]["report"])


class TestRegistry:
    def test_scenarios_are_registered(self):
        names = [entry.name for entry in list_scenarios()]
        assert "fig2-v1" in names
        assert "cluster-small" in names
        assert names == sorted(names)

    def test_sweeps_are_registered(self):
        names = [entry.name for entry in list_sweeps()]
        for expected in ("cluster-scaleout", "cloud-contention", "migration-policies"):
            assert expected in names

    def test_get_scenario_builds_a_spec(self):
        spec = get_scenario("cluster-small")
        assert spec.deployment == "cluster"
        assert spec == ScenarioSpec(
            deployment="cluster", num_edges=2, streams=4, frames=6, seed=11
        )

    def test_every_registered_scenario_builds(self):
        for entry in list_scenarios():
            assert isinstance(entry.build(), ScenarioSpec)
            assert entry.description

    def test_every_registered_sweep_builds(self):
        for entry in list_sweeps():
            assert entry.build().points()

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="known sweeps"):
            get_sweep("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("cluster-small")(lambda: ScenarioSpec())

    def test_undocumented_lambda_builder_registers(self):
        """The extension point must accept builders without docstrings."""
        from repro.experiments import registry

        register_scenario("tmp-lambda-scenario")(lambda: ScenarioSpec(video="v3"))
        try:
            assert get_scenario("tmp-lambda-scenario").video == "v3"
            assert registry._SCENARIOS["tmp-lambda-scenario"].description == ""
        finally:
            del registry._SCENARIOS["tmp-lambda-scenario"]
