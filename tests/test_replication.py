"""Tests for replicated partitions: log shipping, quorum acks, and
warm-standby promotion (zero-downtime failover)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeline import availability_timeline
from repro.cluster.replication import (
    ASYNC_FLUSH_DELAY_S,
    REPLICATION_MODES,
    ReplicationGroup,
)
from repro.cluster.system import ClusterConfig, ClusterSystem
from repro.core.config import ConsistencyLevel, CroesusConfig
from repro.experiments import ScenarioSpec
from repro.storage.kvstore import KeyValueStore
from repro.storage.wal import WriteAheadLog
from repro.video.library import make_camera_streams


def replication_config(seed: int = 11, **overrides) -> ClusterConfig:
    """The `tests/test_cluster_failure.py` golden scenario plus backups."""
    overrides.setdefault("num_edges", 3)
    overrides.setdefault("frame_interval", 0.2)
    overrides.setdefault("checkpoint_interval_s", 0.5)
    overrides.setdefault("failure_schedule", ((1, 1.0, 2.0),))
    overrides.setdefault("replication_factor", 2)
    return ClusterConfig(
        base=CroesusConfig(seed=seed, consistency=ConsistencyLevel.MS_SR),
        **overrides,
    )


def run_replicated(**overrides):
    system = ClusterSystem(replication_config(**overrides))
    result = system.run(make_camera_streams(6, num_frames=10, seed=11))
    return system, result


class TestReplicationValidation:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="replication_mode"):
            replication_config(replication_mode="paxos")
        with pytest.raises(ValueError, match="replication_mode"):
            ScenarioSpec(deployment="cluster", replication_mode="paxos")

    def test_factor_bounds(self):
        with pytest.raises(ValueError, match="at least 1"):
            replication_config(replication_factor=0)
        # Backups live on distinct edges, so factor is capped by the fleet.
        with pytest.raises(ValueError, match="distinct edges"):
            replication_config(replication_factor=4)
        with pytest.raises(ValueError, match="distinct edges"):
            ScenarioSpec(deployment="cluster", num_edges=3, replication_factor=4)

    def test_replication_excludes_scheduled_resharding(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            replication_config(resharding=((1.5, 0, 2),))
        with pytest.raises(ValueError, match="re-homes partitions"):
            ScenarioSpec(
                deployment="cluster",
                num_edges=3,
                replication_factor=2,
                resharding=((1.5, 0, 2),),
            )

    def test_group_commit_window_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            replication_config(replication_factor=1, wal_group_commit_window_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            ScenarioSpec(deployment="cluster", wal_group_commit_window_ms=-1.0)


class TestReplicationGroup:
    def make_group(self, factor: int = 3, mode: str = "sync") -> ReplicationGroup:
        return ReplicationGroup(
            partition_id=0,
            primary_edge=0,
            backup_edges=list(range(1, factor)),
            factor=factor,
            mode=mode,
        )

    def test_ack_delay_per_mode(self):
        delays = [0.003, 0.001, 0.002]
        assert self.make_group(mode="sync").ack_delay(list(delays)) == 0.003
        # factor 3: majority is 2 of 3, and the primary counts, so the
        # ack needs only the fastest backup.
        assert self.make_group(mode="quorum").ack_delay(list(delays)) == 0.001
        assert self.make_group(factor=4, mode="quorum").ack_delay(list(delays)) == 0.002
        assert self.make_group(mode="async").ack_delay(list(delays)) == 0.0
        assert self.make_group(mode="sync").ack_delay([]) == 0.0

    def test_election_prefers_caught_up_then_low_edge_id(self):
        wal = WriteAheadLog()
        records = [wal.append(f"t{i}", "k", i) for i in range(3)]
        group = self.make_group()
        for record in records:
            group.apply(1, record)
        group.apply(2, records[0])
        assert group.elect() == 1
        # Tie on applied LSN breaks toward the lowest edge id.
        tied = self.make_group()
        tied.apply(1, records[0])
        tied.apply(2, records[0])
        assert tied.elect() == 1
        empty = ReplicationGroup(
            partition_id=0, primary_edge=0, backup_edges=[], factor=2, mode="sync"
        )
        assert empty.elect() is None

    def test_promotion_replays_only_the_gap(self):
        wal = WriteAheadLog()
        records = [wal.append(f"t{i}", f"k{i}", i) for i in range(5)]
        group = self.make_group(factor=2)
        for record in records[:3]:
            group.apply(1, record)
        store, gap = group.promote(1, wal)
        assert [record.lsn for record in gap] == [4, 5]
        assert store.snapshot() == {f"k{i}": i for i in range(5)}
        assert group.primary_edge == 1
        assert 1 not in group.backup_edges

    @given(
        writes=st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(0, 100)),
            min_size=1,
            max_size=30,
        ),
        cut=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_promoted_store_matches_primary_committed_state(self, writes, cut):
        """The failover invariant: whatever prefix the network delivered,
        promotion (standby state + gap replay off the surviving log tail)
        reconstructs exactly the crashed primary's committed state."""
        wal = WriteAheadLog()
        primary = KeyValueStore()
        records = []
        for index, (key, value) in enumerate(writes):
            records.append(wal.append(f"txn-{index}", key, value))
            primary.write(key, value, writer=f"txn-{index}")
        group = ReplicationGroup(
            partition_id=0, primary_edge=0, backup_edges=[1], factor=2, mode="sync"
        )
        applied = min(cut, len(records))
        for record in records[:applied]:
            group.apply(1, record)
        assert group.elect() == 1
        store, gap = group.promote(1, wal)
        assert len(gap) == len(records) - applied
        assert store.snapshot() == primary.snapshot()


class TestWarmFailover:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_replicated()

    def test_all_frames_complete_despite_the_failure(self, outcome):
        _, result = outcome
        assert result.num_frames == 6 * 10
        assert result.num_failures == 1

    def test_promotion_determinism_golden(self, outcome):
        """Golden pin of the warm-failover path (seed 11, MS-SR)."""
        _, result = outcome
        assert result.downtime_s == pytest.approx(0.00870625089039212, abs=1e-12)
        assert len(result.promotions) == 1
        promotion = result.promotions[0]
        assert promotion.partition_id == 1
        assert promotion.from_edge == 1
        assert promotion.to_edge == 2
        assert promotion.failed_at == pytest.approx(1.0)
        assert promotion.promoted_at == pytest.approx(1.0087062508903921, abs=1e-12)
        assert promotion.applied_lsn == 3
        assert promotion.records_caught_up == 0
        summary = result.replication_summary()
        assert summary["log_records_shipped"] == 480.0
        assert summary["replication_lag_ms"] == pytest.approx(
            2.1187399972718968, abs=1e-9
        )

    def test_failover_skips_checkpoint_restore(self, outcome):
        """Promotion is detection + election + gap replay — with sync
        shipping the backup was current, so no records are replayed."""
        _, result = outcome
        failure = result.failures[0]
        assert failure.edge_id == 1
        assert failure.recovery_time == 0.0
        assert failure.records_replayed == 0
        assert failure.transactions_replayed == 0
        assert failure.downtime == pytest.approx(result.downtime_s)

    def test_repeat_run_is_bitwise_identical(self, outcome):
        _, first = outcome
        _, again = run_replicated()
        assert again.summary() == first.summary()
        assert again.availability_summary() == first.availability_summary()
        assert again.replication_summary() == first.replication_summary()

    def test_failover_beats_replay_downtime_by_5x(self, outcome):
        _, replicated = outcome
        _, replay = run_replicated(replication_factor=1)
        assert replay.downtime_s == pytest.approx(1.02204, abs=1e-4)
        assert replicated.downtime_s > 0
        assert replay.downtime_s >= 5.0 * replicated.downtime_s

    def test_availability_timeline_sees_the_promotion(self, outcome):
        system, _ = outcome
        timeline = availability_timeline(system.events)
        assert timeline.num_promotions == 1
        assert timeline.promotions_to(2) == 1
        assert timeline.log_ships > 0
        assert [edge for _, edge in timeline.rejoins] == [1]
        (cycle,) = timeline.cycles
        edge, failed_at, recovered_at, replayed = cycle
        assert edge == 1
        assert replayed == 0
        assert recovered_at - failed_at < 0.1

    def test_rejoined_host_comes_back_as_standby(self, outcome):
        system, _ = outcome
        (rejoin,) = system.events.of_kind("edge_rejoined")
        assert rejoin.payload["edge"] == 1
        assert rejoin.payload["standby_records"] > 0
        assert rejoin.timestamp > 2.0  # after the scheduled outage window


class TestShippingModes:
    def test_factor_one_is_inert_and_mode_axis_has_no_effect(self):
        _, baseline = run_replicated(replication_factor=1)
        _, async_one = run_replicated(replication_factor=1, replication_mode="async")
        assert async_one.summary() == baseline.summary()
        assert async_one.availability_summary() == baseline.availability_summary()
        assert baseline.log_records_shipped == 0
        assert baseline.promotions == ()
        assert baseline.replication_summary()["replication_factor"] == 1.0

    def test_sync_pays_acks_async_pays_staleness(self):
        _, sync_result = run_replicated(replication_mode="sync")
        _, async_result = run_replicated(replication_mode="async")
        _, quorum_result = run_replicated(
            replication_factor=3, replication_mode="quorum"
        )
        assert sync_result.replication_ack_wait_s > 0
        assert quorum_result.replication_ack_wait_s > 0
        assert async_result.replication_ack_wait_s == 0.0
        # The async flush buffer shows up as shipping lag.
        assert (
            async_result.replication_lag_s
            >= sync_result.replication_lag_s + ASYNC_FLUSH_DELAY_S / 2
        )
        # A quorum ack returns at the fastest backup, never after the
        # slowest-link lag a sync ack would wait on.
        assert quorum_result.replication_ack_wait_s <= quorum_result.replication_lag_s

    def test_modes_are_exactly_the_supported_set(self):
        assert set(REPLICATION_MODES) == {"sync", "quorum", "async"}


class TestGroupCommit:
    def test_window_batches_flushes_without_changing_results(self):
        _, plain = run_replicated(replication_factor=1, failure_schedule=())
        _, eager = run_replicated(replication_factor=2, failure_schedule=())
        _, windowed = run_replicated(
            replication_factor=1,
            failure_schedule=(),
            wal_group_commit_window_s=0.05,
        )
        # The append observer only exists when replication or group commit
        # asks for it; the untouched default path counts nothing.
        assert plain.policy_stats.log_appends == 0
        # Without a window every append is its own flush.
        assert eager.policy_stats.log_appends > 0
        assert eager.policy_stats.log_flushes == eager.policy_stats.log_appends
        assert windowed.policy_stats.log_appends == eager.policy_stats.log_appends
        assert 0 < windowed.policy_stats.log_flushes < windowed.policy_stats.log_appends
        # Group commit is a durability/accounting policy, not a scheduling
        # change: the simulated outcome stays pinned.
        assert windowed.summary() == plain.summary()
