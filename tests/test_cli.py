"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.video == "v1"
        assert args.lower == 0.3
        assert args.consistency == "ms-ia"

    def test_unknown_video_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--video", "v99"])


class TestCommands:
    def test_videos_lists_workloads(self, capsys):
        assert main(["videos"]) == 0
        output = capsys.readouterr().out
        for key in ("v1", "v2", "v3", "v4", "v5"):
            assert key in output

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "--video", "v1", "--frames", "10", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "F-score" in output
        assert "v1" in output

    def test_run_with_ms_sr(self, capsys):
        assert main(
            ["run", "--video", "v1", "--frames", "8", "--consistency", "ms-sr"]
        ) == 0
        assert "F-score" in capsys.readouterr().out

    def test_tune_gradient_only(self, capsys):
        assert main(
            ["tune", "--video", "v1", "--frames", "20", "--method", "gradient", "--target", "0.7"]
        ) == 0
        output = capsys.readouterr().out
        assert "gradient step" in output
        assert "brute force" not in output

    def test_tune_both_methods(self, capsys):
        assert main(["tune", "--video", "v3", "--frames", "20", "--target", "0.7"]) == 0
        output = capsys.readouterr().out
        assert "gradient step" in output
        assert "brute force" in output

    def test_compare_prints_three_systems(self, capsys):
        assert main(["compare", "--video", "v1", "--frames", "15", "--target", "0.7"]) == 0
        output = capsys.readouterr().out
        for name in ("croesus", "edge-only", "cloud-only"):
            assert name in output
