"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.report import REQUIRED_KEYS, validate_report


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.video == "v1"
        assert args.lower == 0.3
        assert args.consistency == "ms-ia"
        assert args.json is False
        assert args.output is None

    def test_unknown_video_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--video", "v99"])

    def test_every_command_accepts_the_output_flags(self):
        for command in ("run", "tune", "compare", "cluster", "scenario", "sweep", "videos"):
            args = build_parser().parse_args([command, "--json"])
            assert args.json is True, command


class TestCommands:
    def test_videos_lists_workloads(self, capsys):
        assert main(["videos"]) == 0
        output = capsys.readouterr().out
        for key in ("v1", "v2", "v3", "v4", "v5"):
            assert key in output

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "--video", "v1", "--frames", "10", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "F-score" in output
        assert "v1" in output

    def test_run_with_ms_sr(self, capsys):
        assert main(
            ["run", "--video", "v1", "--frames", "8", "--consistency", "ms-sr"]
        ) == 0
        assert "F-score" in capsys.readouterr().out

    def test_tune_gradient_only(self, capsys):
        assert main(
            ["tune", "--video", "v1", "--frames", "20", "--method", "gradient", "--target", "0.7"]
        ) == 0
        output = capsys.readouterr().out
        assert "gradient step" in output
        assert "brute force" not in output

    def test_tune_both_methods(self, capsys):
        assert main(
            ["tune", "--video", "v3", "--frames", "20", "--target", "0.7", "--method", "both"]
        ) == 0
        output = capsys.readouterr().out
        assert "gradient step" in output
        assert "brute force" in output
        assert "coordinate descent" not in output

    def test_tune_all_methods_by_default(self, capsys):
        assert main(["tune", "--video", "v3", "--frames", "20", "--target", "0.7"]) == 0
        output = capsys.readouterr().out
        assert "brute force" in output
        assert "gradient step" in output
        assert "coordinate descent" in output
        assert "frame rescores" in output

    def test_tune_descent_matches_brute_at_the_same_step(self, capsys):
        """grid and descent agree on the optimum; descent rescores less."""
        assert main(
            ["tune", "--video", "v1", "--frames", "25", "--target", "0.7",
             "--step", "0.1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        brute, descent = payload["methods"]["brute"], payload["methods"]["descent"]
        assert descent["thresholds"] == brute["thresholds"]
        assert descent["frame_rescores"] < brute["frame_rescores"]

    def test_compare_prints_three_systems(self, capsys):
        assert main(["compare", "--video", "v1", "--frames", "15", "--target", "0.7"]) == 0
        output = capsys.readouterr().out
        for name in ("croesus", "edge-only", "cloud-only"):
            assert name in output

    def test_cluster_prints_edge_table(self, capsys):
        assert main(
            ["cluster", "--edges", "2", "--streams", "2", "--frames", "4", "--seed", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "machine" in output
        assert "throughput (fps)" in output

    def test_cluster_with_failure_prints_the_availability_timeline(self, capsys):
        assert main(
            [
                "cluster",
                "--edges", "3",
                "--streams", "4",
                "--frames", "8",
                "--fps", "5",
                "--fail", "1:1.0:2.0",
                "--checkpoint-interval", "0.5",
                "--seed", "11",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "failures: 1" in output
        assert "edge 1 failed" in output
        assert "checkpoints:" in output

    def test_cluster_with_adaptation_prints_the_controller_summary(self, capsys):
        assert main(
            [
                "cluster",
                "--edges", "2",
                "--streams", "3",
                "--frames", "10",
                "--fps", "5",
                "--adaptation", "retune",
                "--adaptation-interval", "0.5",
                "--seed", "7",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "threshold adaptation: retune" in output
        assert "tuner evaluations" in output
        assert "cam0-v1" in output

    def test_scenario_adaptation_override(self, capsys):
        """--adaptation none strips the registered scenario's adaptation."""
        assert main(["scenario", "adaptive-thresholds", "--adaptation", "none", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["threshold_adaptation"] is None
        assert payload["threshold_updates"] == 0
        assert payload["adaptation"] is None

    def test_cluster_with_reshard_prints_the_move(self, capsys):
        assert main(
            [
                "cluster",
                "--edges", "3",
                "--streams", "4",
                "--frames", "6",
                "--fps", "5",
                "--reshard", "1.0:0:2",
                "--seed", "11",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "re-shards: 1" in output
        assert "partition 0: edge 0 -> edge 2" in output

    def test_scenario_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fig2-v1" in output
        assert "cluster-small" in output

    def test_scenario_runs_by_name(self, capsys):
        assert main(["scenario", "cluster-small"]) == 0
        output = capsys.readouterr().out
        assert "cluster-small" in output
        assert "F-score" in output

    def test_sweep_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        output = capsys.readouterr().out
        assert "cluster-scaleout" in output

    def test_sweep_over_an_axis(self, capsys):
        assert main(
            ["sweep", "--base", "cluster-small", "--axis", "num_edges=1,2"]
        ) == 0
        output = capsys.readouterr().out
        assert "num_edges" in output
        assert "throughput (fps)" in output

    def test_sweep_skips_invalid_combinations(self, capsys):
        """An ad-hoc grid with some invalid cells runs the valid ones."""
        assert main(
            ["sweep", "--base", "cluster-small", "--axis", "frames=0,4"]
        ) == 0
        output = capsys.readouterr().out
        assert "skipped 1 invalid combinations" in output


class TestJsonOutput:
    """--json must parse and carry the shared report schema's keys."""

    def test_run_json_is_a_valid_report(self, capsys):
        assert main(["run", "--video", "v1", "--frames", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["deployment"] == "single"
        assert set(REQUIRED_KEYS) <= set(payload)

    def test_cluster_json_is_a_valid_report(self, capsys):
        assert main(
            ["cluster", "--edges", "2", "--streams", "2", "--frames", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["deployment"] == "cluster"
        assert len(payload["edges"]) == 2

    def test_scenario_json_is_a_valid_report(self, capsys):
        assert main(["scenario", "cluster-small", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_report(payload)
        assert payload["scenario"]["seed"] == 11

    def test_compare_json_carries_three_reports(self, capsys):
        assert main(
            ["compare", "--video", "v1", "--frames", "10", "--target", "0.7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["reports"]) == 3
        for report in payload["reports"]:
            validate_report(report)
        assert len(payload["tuned_thresholds"]) == 2

    def test_tune_json_carries_methods(self, capsys):
        assert main(
            ["tune", "--video", "v1", "--frames", "15", "--method", "gradient",
             "--target", "0.7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "gradient" in payload["methods"]
        assert len(payload["methods"]["gradient"]["thresholds"]) == 2

    def test_videos_json_lists_workloads(self, capsys):
        assert main(["videos", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["key"] for entry in payload} == {
            "v1",
            "v2",
            "v3",
            "v4",
            "v5",
            "stress",
        }

    def test_scenario_list_json(self, capsys):
        assert main(["scenario", "--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload}
        assert "cluster-small" in names

    def test_sweep_json_serialises_cells(self, capsys):
        assert main(
            ["sweep", "--base", "cluster-small", "--axis", "num_edges=1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 1
        validate_report(payload["cells"][0]["report"])

    def test_output_writes_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(
            ["run", "--video", "v1", "--frames", "8", "--json", "--output", str(target)]
        ) == 0
        assert capsys.readouterr().out == ""
        validate_report(json.loads(target.read_text()))


class TestInvalidInput:
    """Bad arguments exit 2 with a message instead of raising a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--frames", "0"],
            ["run", "--frames", "-5"],
            ["run", "--lower", "0.8", "--upper", "0.2"],
            ["run", "--lower", "-0.1", "--upper", "0.5"],
            ["run", "--upper", "1.5"],
            ["tune", "--frames", "0"],
            ["tune", "--target", "0"],
            ["tune", "--target", "1.5"],
            ["tune", "--target", "-0.3"],
            ["tune", "--step", "0"],
            ["tune", "--step", "0.95"],
            ["compare", "--frames", "-1"],
            ["compare", "--target", "2.0"],
            ["cluster", "--edges", "0"],
            ["cluster", "--streams", "-1"],
            ["cluster", "--frames", "0"],
            ["cluster", "--fps", "0"],
            ["cluster", "--cloud-servers", "-1"],
            ["cluster", "--fail", "1:2.0"],
            ["cluster", "--fail", "1:2.0:1.0"],
            ["cluster", "--fail", "one:2.0:3.0"],
            ["cluster", "--edges", "2", "--fail", "5:1.0:2.0"],
            ["cluster", "--checkpoint-interval", "-1"],
            ["cluster", "--reshard", "1.0:0"],
            ["cluster", "--edges", "2", "--reshard", "1.0:9:0"],
            ["cluster", "--adaptation", "retune", "--adaptation-interval", "0"],
            ["cluster", "--adaptation", "feedback", "--adaptation-target", "0"],
            ["scenario", "adaptive-thresholds", "--adaptation-target", "1.5"],
            ["scenario"],
            ["scenario", "no-such-scenario"],
            ["sweep"],
            ["sweep", "no-such-sweep"],
            ["sweep", "--axis", "not_a_field=1"],
            ["sweep", "--axis", "num_edges"],
            ["sweep", "--base", "no-such-scenario", "--axis", "num_edges=1"],
            ["sweep", "cluster-scaleout", "--axis", "num_edges=1"],
            ["sweep", "--base", "cluster-small", "--axis", "num_edges=two"],
            ["sweep", "--base", "cluster-small", "--axis", "frames=0,-1"],
            ["sweep", "--base", "fig2-v1", "--axis", "num_edges=1,2"],
            ["videos", "--output", "/no/such/dir/out.txt"],
        ],
    )
    def test_exits_2_with_a_message(self, argv, capsys):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert captured.out == ""
