"""Tests for the MS-IA controller (invariant confluence with apologies)."""

import pytest

from repro.transactions.checker import check_ms_ia
from repro.transactions.exceptions import (
    InvariantViolation,
    SectionOrderError,
    TransactionAborted,
)
from repro.transactions.history import History
from repro.transactions.model import MultiStageTransaction, SectionSpec, TransactionStatus
from repro.transactions.ms_ia import MSIAController
from repro.transactions.ops import ReadWriteSet


def _simple_transaction(txn_id: str, key: str = "x") -> MultiStageTransaction:
    def initial(ctx):
        value = ctx.read(key, default=0) or 0
        ctx.write(key, value + 1)
        return value + 1

    def final(ctx):
        return ctx.read(key, default=0)

    rwset = ReadWriteSet(reads=frozenset({key}), writes=frozenset({key}))
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(body=initial, rwset=rwset),
        final=SectionSpec(body=final, rwset=ReadWriteSet(reads=frozenset({key}))),
    )


class TestMSIAController:
    def test_full_lifecycle(self, store):
        controller = MSIAController(store)
        txn = _simple_transaction("t1")
        controller.process_initial(txn, now=0.0)
        assert txn.status is TransactionStatus.INITIAL_COMMITTED
        controller.process_final(txn, now=1.0)
        assert txn.is_committed
        assert store.read("x") == 1

    def test_locks_released_after_initial_section(self, store):
        """Unlike MS-SR, a conflicting transaction can run between the
        sections of another transaction."""
        controller = MSIAController(store)
        first = _simple_transaction("t1")
        controller.process_initial(first, now=0.0)

        second = _simple_transaction("t2")
        controller.process_initial(second, now=0.1)  # must NOT abort
        controller.process_final(second, now=0.2)
        controller.process_final(first, now=1.0)
        assert store.read("x") == 2
        assert controller.stats.aborts == 0

    def test_lock_hold_time_is_short(self, store):
        controller = MSIAController(store)
        txn = _simple_transaction("t1")
        controller.process_initial(txn, now=0.0)
        controller.process_final(txn, now=5.0)
        # Locks are acquired and released within each section at the same
        # timestamp, so the measured hold time stays ~0, not 5 seconds.
        assert controller.lock_manager.average_hold_time() == pytest.approx(0.0)

    def test_final_without_initial_rejected(self, store):
        controller = MSIAController(store)
        with pytest.raises(SectionOrderError):
            controller.process_final(_simple_transaction("t1"))

    def test_apology_recorded_on_transaction(self, store):
        controller = MSIAController(store)

        def initial(ctx):
            ctx.write("k", "guess")

        def final(ctx):
            ctx.apologize("the guess was wrong")

        txn = MultiStageTransaction(
            transaction_id="t1",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"k"}))),
            final=SectionSpec(body=final),
        )
        controller.process_initial(txn)
        controller.process_final(txn)
        assert txn.apologies == ("the guess was wrong",)

    def test_invariant_violation_triggers_retraction(self, store):
        controller = MSIAController(store)

        def initial(ctx):
            ctx.write("balance", -10)

        def final(ctx):
            raise InvariantViolation("non-negative-balance")

        txn = MultiStageTransaction(
            transaction_id="t1",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"balance"}))),
            final=SectionSpec(body=final, rwset=ReadWriteSet(writes=frozenset({"balance"}))),
        )
        controller.process_initial(txn)
        controller.process_final(txn)
        assert txn.is_committed  # the transaction still finally-commits...
        assert store.read("balance") is None  # ...but its effect was retracted
        assert txn.apologies  # ...and an apology was issued

    def test_registered_invariant_checked_after_final(self, store):
        controller = MSIAController(store)
        controller.register_invariant(
            "x-non-negative", lambda s: (s.read("x", default=0) or 0) >= 0
        )

        def initial(ctx):
            ctx.write("x", -5)

        txn = MultiStageTransaction(
            transaction_id="t1",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"x"}))),
            final=SectionSpec.noop(),
        )
        controller.process_initial(txn)
        controller.process_final(txn)
        assert store.read("x") is None  # write retracted by the post-commit check
        assert any("x-non-negative" in apology for apology in txn.apologies)

    def test_initial_lock_denial_aborts(self, store):
        from repro.storage.locks import LockMode

        controller = MSIAController(store)
        # Hold the lock externally to force a denial.
        controller.lock_manager.try_acquire("someone-else", "x", LockMode.EXCLUSIVE)
        txn = _simple_transaction("t1")
        with pytest.raises(TransactionAborted):
            controller.process_initial(txn)
        assert txn.is_aborted

    def test_final_lock_denial_keeps_transaction_pending(self, store):
        from repro.storage.locks import LockMode

        controller = MSIAController(store)
        txn = _simple_transaction("t1")
        controller.process_initial(txn)
        controller.lock_manager.try_acquire("someone-else", "x", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionAborted):
            controller.process_final(txn)
        # The final section remains pending so it can be retried later.
        assert "t1" in controller.pending_finals()
        controller.lock_manager.release_all("someone-else")
        controller.process_final(txn)
        assert txn.is_committed

    def test_history_satisfies_ms_ia(self, store):
        history = History()
        controller = MSIAController(store, history=history)
        transactions = [_simple_transaction(f"t{i}") for i in range(4)]
        for i, txn in enumerate(transactions):
            controller.process_initial(txn, now=float(i))
        for i, txn in enumerate(reversed(transactions)):
            controller.process_final(txn, now=10.0 + i)
        assert check_ms_ia(history)

    def test_cascade_retract_reports_dependents(self, store):
        controller = MSIAController(store)
        first = _simple_transaction("t1", key="shared")
        second = _simple_transaction("t2", key="shared")
        controller.process_initial(first)
        controller.process_initial(second)
        dependents = controller.cascade_retract("t1")
        assert dependents == {"t2"}
