"""Tests for bandwidth thresholding."""

import pytest

from repro.core.thresholds import ConfidenceInterval, ThresholdPolicy

from helpers import make_detection, make_label_set


class TestThresholdPolicy:
    def test_classification_intervals(self):
        policy = ThresholdPolicy(0.3, 0.7)
        assert policy.classify(0.1) is ConfidenceInterval.DISCARD
        assert policy.classify(0.3) is ConfidenceInterval.VALIDATE
        assert policy.classify(0.5) is ConfidenceInterval.VALIDATE
        assert policy.classify(0.7) is ConfidenceInterval.VALIDATE
        assert policy.classify(0.9) is ConfidenceInterval.KEEP

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(0.7, 0.3)
        with pytest.raises(ValueError):
            ThresholdPolicy(-0.1, 0.5)

    def test_degenerate_interval_never_validates_almost_anything(self):
        policy = ThresholdPolicy(0.0, 0.0)
        assert policy.classify(0.5) is ConfidenceInterval.KEEP
        assert policy.classify(0.0) is ConfidenceInterval.VALIDATE

    def test_classify_labels_partitions(self):
        policy = ThresholdPolicy(0.3, 0.7)
        labels = make_label_set(
            0,
            make_detection("low", confidence=0.1),
            make_detection("mid", confidence=0.5),
            make_detection("high", confidence=0.9),
        )
        partition = policy.classify_labels(labels)
        assert [d.name for d in partition[ConfidenceInterval.DISCARD]] == ["low"]
        assert [d.name for d in partition[ConfidenceInterval.VALIDATE]] == ["mid"]
        assert [d.name for d in partition[ConfidenceInterval.KEEP]] == ["high"]

    def test_should_validate(self):
        policy = ThresholdPolicy(0.3, 0.7)
        assert policy.should_validate([make_detection(confidence=0.5)])
        assert not policy.should_validate([make_detection(confidence=0.9)])
        assert not policy.should_validate([make_detection(confidence=0.1)])
        assert not policy.should_validate([])

    def test_surviving_labels_drop_discard_interval(self):
        policy = ThresholdPolicy(0.3, 0.7)
        labels = make_label_set(
            0,
            make_detection("low", confidence=0.1),
            make_detection("mid", confidence=0.5),
            make_detection("high", confidence=0.9),
        )
        assert policy.surviving_labels(labels).names() == ["mid", "high"]

    def test_validate_width(self):
        assert ThresholdPolicy(0.2, 0.6).validate_width == pytest.approx(0.4)

    def test_wider_interval_validates_superset(self):
        narrow = ThresholdPolicy(0.4, 0.5)
        wide = ThresholdPolicy(0.2, 0.8)
        for confidence in (0.05, 0.25, 0.45, 0.65, 0.95):
            detection = [make_detection(confidence=confidence)]
            if narrow.should_validate(detection):
                assert wide.should_validate(detection)

    def test_as_tuple(self):
        assert ThresholdPolicy(0.2, 0.6).as_tuple() == (0.2, 0.6)
