"""Tests for the threshold evaluator and the two search strategies."""

import pytest

from repro.core.config import CroesusConfig
from repro.core.optimizer import (
    ThresholdEvaluator,
    brute_force_search,
    gradient_step_search,
)


@pytest.fixture(scope="module")
def evaluator() -> ThresholdEvaluator:
    """A profiled evaluator shared by the module's tests (profiling once)."""
    config = CroesusConfig(seed=4)
    return ThresholdEvaluator.profile(config, "v1", num_frames=50)


class TestThresholdEvaluator:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            ThresholdEvaluator([])

    def test_evaluate_returns_metrics_in_range(self, evaluator):
        score = evaluator.evaluate(0.3, 0.7)
        assert 0.0 <= score.bandwidth_utilization <= 1.0
        assert 0.0 <= score.f_score <= 1.0
        assert score.average_initial_latency > 0
        assert score.average_final_latency >= score.average_initial_latency

    def test_empty_interval_means_zero_bandwidth(self, evaluator):
        score = evaluator.evaluate(0.0, 0.0)
        assert score.bandwidth_utilization <= 0.05

    def test_full_interval_means_high_bandwidth(self, evaluator):
        score = evaluator.evaluate(0.0, 0.95)
        assert score.bandwidth_utilization > 0.5

    def test_results_are_cached(self, evaluator):
        first = evaluator.evaluate(0.2, 0.6)
        second = evaluator.evaluate(0.2, 0.6)
        assert first is second

    def test_wider_interval_does_not_reduce_bandwidth(self, evaluator):
        narrow = evaluator.evaluate(0.4, 0.5)
        wide = evaluator.evaluate(0.2, 0.8)
        assert wide.bandwidth_utilization >= narrow.bandwidth_utilization

    def test_grid_covers_lower_triangle(self, evaluator):
        scores = evaluator.evaluate_grid(step=0.25)
        assert all(score.lower <= score.upper for score in scores)
        assert len(scores) == 10  # 4 grid values -> 4+3+2+1 pairs


class TestBruteForceSearch:
    def test_respects_f_score_floor_when_feasible(self, evaluator):
        result = brute_force_search(evaluator, target_f_score=0.7)
        assert result.feasible
        assert result.best.f_score >= 0.7

    def test_minimizes_bandwidth_among_feasible(self, evaluator):
        result = brute_force_search(evaluator, target_f_score=0.7)
        feasible = [s for s in result.scores if s.f_score >= 0.7]
        assert result.best.bandwidth_utilization == min(
            s.bandwidth_utilization for s in feasible
        )

    def test_infeasible_target_returns_best_effort(self, evaluator):
        result = brute_force_search(evaluator, target_f_score=1.01)
        assert not result.feasible
        assert result.best.f_score == max(s.f_score for s in result.scores)

    def test_evaluation_count_matches_grid(self, evaluator):
        result = brute_force_search(evaluator, target_f_score=0.7, step=0.2)
        assert result.evaluations == len(result.scores)


class TestGradientStepSearch:
    def test_finds_feasible_pair(self, evaluator):
        result = gradient_step_search(evaluator, target_f_score=0.7)
        assert result.feasible
        assert result.best.f_score >= 0.7

    def test_uses_fewer_evaluations_than_brute_force(self, evaluator):
        brute = brute_force_search(evaluator, target_f_score=0.8)
        gradient = gradient_step_search(evaluator, target_f_score=0.8)
        assert gradient.evaluations < brute.evaluations

    def test_result_close_to_brute_force_bandwidth(self, evaluator):
        """The gradient search is a heuristic: its BU should be in the same
        ballpark as the exhaustive optimum (paper reports both stars in the
        same region of the heatmap)."""
        brute = brute_force_search(evaluator, target_f_score=0.8)
        gradient = gradient_step_search(evaluator, target_f_score=0.8)
        assert gradient.best.bandwidth_utilization <= 1.0
        assert gradient.best.bandwidth_utilization >= brute.best.bandwidth_utilization

    def test_infeasible_target_reported(self, evaluator):
        result = gradient_step_search(evaluator, target_f_score=1.01)
        assert not result.feasible
