"""Engine hot path and bounded-memory fast path.

Covers the PR's perf machinery from below and from above:

* the heap-backed :class:`~repro.sim.engine.Server` must produce results
  identical to the preserved O(n)-scan :class:`ReferenceServer` (the
  speedup is allowed to change constants, never outcomes);
* the streaming accumulators (:mod:`repro.analysis.streaming`) must match
  their exact list-based counterparts while exact, and stay within the
  promised error bound after spilling;
* the cluster fast path (``record_frames=False``) must agree with the
  fully recorded path on every aggregate at loads where its serialising
  approximation is exact, stay deterministic, and keep memory-bounded
  state (bounded event log, capped server records);
* the new :class:`~repro.experiments.spec.ScenarioSpec` fields must
  validate.
"""

from __future__ import annotations

import random
import statistics

import numpy as np
import pytest

from repro.analysis.streaming import QuantileAccumulator, RingBuffer, StreamingStats
from repro.detection.profiles import MODEL_LIBRARY
from repro.experiments import ScenarioSpec, get_scenario, run
from repro.sim.engine import ReferenceServer, Server
from repro.sim.events import EventLog
from repro.sim.rng import RngRegistry
from repro.traffic.source import TrafficConfig, TrafficSource, percentile
from repro.video.library import VIDEO_LIBRARY, make_video


# -- heap-backed server vs the preserved reference implementation ------------
class TestServerMatchesReference:
    def _drive(self, server, schedule):
        """Run one admission schedule; return every (start, wait, end).

        Mirrors the system's usage: each admission's start is read (and
        its service completed) before the next admit, so pending batches
        never outrun the server's capacity slots.
        """
        outcomes = []
        for ready, priority, service in schedule:
            admission = server.admit(ready, priority=priority)
            end = server.complete(admission, service)
            outcomes.append((admission.start, admission.wait, end))
        return outcomes

    def _drive_batched(self, server, schedule, batch: int):
        """Admit ``batch`` jobs at a time before resolving, to exercise
        the pending-queue ordering (batch must not exceed capacity)."""
        outcomes = []
        for offset in range(0, len(schedule), batch):
            admissions = [
                (server.admit(ready, priority=priority), service)
                for ready, priority, service in schedule[offset : offset + batch]
            ]
            for admission, service in admissions:
                end = server.complete(admission, service)
                outcomes.append((admission.start, admission.wait, end))
        return outcomes

    @pytest.mark.parametrize("discipline", ["fifo", "priority"])
    def test_identical_outcomes_on_random_schedules(self, discipline):
        rng = random.Random(7)
        for trial in range(20):
            schedule = []
            clock = 0.0
            for _ in range(50):
                clock += rng.expovariate(10.0)
                schedule.append((clock, rng.randrange(3), rng.uniform(0.0, 0.3)))
            capacity = rng.choice([1, 2, None])
            fast = Server(capacity=capacity, discipline=discipline)
            reference = ReferenceServer(capacity=capacity, discipline=discipline)
            assert self._drive(fast, schedule) == self._drive(reference, schedule), (
                discipline,
                trial,
            )

    @pytest.mark.parametrize("capacity,batch", [(2, 2), (None, 10)])
    def test_identical_outcomes_on_batched_priority_admissions(self, capacity, batch):
        """Deep pending batches hit the heap ordering itself: the pop
        order of ``(-priority, sequence)`` must equal the reference
        implementation's min() scan, job for job."""
        rng = random.Random(13)
        schedule = []
        clock = 0.0
        for _ in range(60):
            clock += rng.expovariate(20.0)
            schedule.append((clock, rng.randrange(3), rng.uniform(0.0, 0.1)))
        fast = Server(capacity=capacity, discipline="priority")
        reference = ReferenceServer(capacity=capacity, discipline="priority")
        assert self._drive_batched(fast, schedule, batch) == self._drive_batched(
            reference, schedule, batch
        )

    def test_identical_wait_statistics(self):
        schedule = [(0.0, 0, 1.0), (0.1, 0, 1.0), (0.2, 1, 1.0), (0.3, 0, 1.0)]
        fast = Server(capacity=2, discipline="priority")
        reference = ReferenceServer(capacity=2, discipline="priority")
        self._drive_batched(fast, schedule, 2)
        self._drive_batched(reference, schedule, 2)
        assert fast.waits == reference.waits
        assert fast.mean_wait == reference.mean_wait
        assert fast.busy_time == reference.busy_time

    def test_priority_admission_overtakes_queued_batch(self):
        """A later high-priority admission starts before earlier ones.

        The heap key ``(-priority, sequence)`` must reproduce the
        reference scan's strict total order: the priority-1 job jumps the
        two queued priority-0 jobs, which then run in request order.
        """
        for cls in (Server, ReferenceServer):
            server = cls(capacity=1, discipline="priority")
            a = server.admit(0.0, priority=0)
            b = server.admit(0.0, priority=0)
            c = server.admit(0.0, priority=1)
            # Reading any start resolves the whole batch in queue order.
            assert c.start == 0.0
            server.complete(c, 1.0)
            assert a.start == 1.0
            server.complete(a, 1.0)
            assert b.start == 2.0
            server.complete(b, 1.0)

    def test_fifo_ignores_priority(self):
        for cls in (Server, ReferenceServer):
            server = cls(capacity=1, discipline="fifo")
            a = server.admit(0.0, priority=0)
            c = server.admit(0.0, priority=5)
            assert a.start == 0.0
            server.complete(a, 1.0)
            assert c.start == 1.0
            server.complete(c, 1.0)


class TestServerStreamingStats:
    def _loaded(self, **kwargs) -> Server:
        server = Server(capacity=1, **kwargs)
        for index in range(1000):
            server.reserve(index * 0.001, 0.01)
        return server

    def test_record_jobs_off_bounds_the_wait_list(self):
        server = self._loaded(record_jobs=False)
        assert len(server.waits) == Server.WAIT_TAIL
        assert server.jobs == 1000

    def test_streaming_wait_stats_match_full_recording(self):
        full = self._loaded(record_jobs=True)
        streaming = self._loaded(record_jobs=False)
        assert streaming.mean_wait == pytest.approx(full.mean_wait)
        assert streaming.max_wait == full.max_wait
        assert streaming.jobs == full.jobs

    def test_interval_retention_caps_the_record(self):
        # Trimming happens in amortised blocks, so the live record sits
        # between the cap and twice the cap instead of exactly at it.
        capped = self._loaded(interval_retention=64)
        assert 64 <= len(capped._intervals) <= 128
        uncapped = self._loaded()
        assert len(uncapped._intervals) == 1000

    def test_whole_run_load_exact_despite_trimming(self):
        full = self._loaded()
        capped = self._loaded(interval_retention=64)
        now = 10.1
        assert capped.load(now) == pytest.approx(full.load(now))
        assert capped.busy_time == full.busy_time


# -- streaming accumulators ---------------------------------------------------
class TestStreamingStats:
    def test_matches_builtin_statistics(self):
        rng = random.Random(11)
        values = [rng.uniform(-5.0, 50.0) for _ in range(500)]
        stats = StreamingStats()
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.min == min(values)
        assert stats.max == max(values)

    def test_empty_is_all_zero(self):
        stats = StreamingStats()
        assert (stats.count, stats.mean, stats.min, stats.max) == (0, 0.0, 0.0, 0.0)


class TestQuantileAccumulator:
    def test_exact_mode_matches_nearest_rank(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(1000)]
        accumulator = QuantileAccumulator(exact_limit=4096)
        for value in values:
            accumulator.add(value)
        assert accumulator.is_exact
        for q in (0.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert accumulator.percentile(q) == percentile(values, q)

    def test_spilled_mode_stays_within_relative_error(self):
        rng = random.Random(5)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(50_000)]
        accumulator = QuantileAccumulator(exact_limit=1024, relative_error=0.01)
        for value in values:
            accumulator.add(value)
        assert not accumulator.is_exact
        for q in (50.0, 90.0, 95.0, 99.0):
            exact = percentile(values, q)
            estimate = accumulator.percentile(q)
            assert abs(estimate - exact) / exact <= 0.02, q

    def test_deterministic_across_instances(self):
        values = [((index * 2654435761) % 1000) / 7.0 + 0.1 for index in range(10_000)]
        first = QuantileAccumulator(exact_limit=256)
        second = QuantileAccumulator(exact_limit=256)
        for value in values:
            first.add(value)
            second.add(value)
        for q in (50.0, 95.0, 99.0):
            assert first.percentile(q) == second.percentile(q)

    def test_non_positive_samples_tracked_exactly(self):
        accumulator = QuantileAccumulator(exact_limit=4)
        for value in (-1.0, 0.0, -2.5, 3.0, 4.0, 5.0):
            accumulator.add(value)
        assert not accumulator.is_exact
        assert accumulator.percentile(25.0) == 0.0  # the largest non-positive
        assert accumulator.percentile(100.0) == 5.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileAccumulator(exact_limit=0)
        with pytest.raises(ValueError):
            QuantileAccumulator(relative_error=1.5)
        with pytest.raises(ValueError):
            QuantileAccumulator().percentile(101.0)


class TestRingBuffer:
    def test_keeps_most_recent_window(self):
        ring = RingBuffer(4)
        ring.extend(float(index) for index in range(10))
        assert ring.values() == [6.0, 7.0, 8.0, 9.0]
        assert len(ring) == 4

    def test_partial_fill_in_order(self):
        ring = RingBuffer(8)
        ring.extend([1.0, 2.0, 3.0])
        assert ring.values() == [1.0, 2.0, 3.0]


# -- bounded event log --------------------------------------------------------
class TestBoundedEventLog:
    def test_capacity_bounds_retention_but_counts_stay_exact(self):
        log = EventLog(capacity=100)
        for index in range(1000):
            log.record(float(index), "frame" if index % 2 else "txn")
        assert len(log) == 100
        assert log.total_recorded == 1000
        assert log.count_of_kind("frame") == 500
        assert log.count_of_kind("txn") == 500
        retained = log.of_kind("frame")
        assert len(retained) <= 100
        assert retained[-1].timestamp == 999.0

    def test_unbounded_log_keeps_everything(self):
        log = EventLog()
        for index in range(1000):
            log.record(float(index), "frame")
        assert len(log) == 1000
        assert len(log.of_kind("frame")) == 1000


# -- cluster fast path vs the recorded path ----------------------------------
#: A lightly loaded open-loop cell (~25% utilization): every frame
#: finishes well before its successor arrives, so the fast-path driver's
#: serialising approximation is exact and both paths simulate the very
#: same timeline.
_LIGHT_OVERRIDES = dict(offered_rate=3.0, duration_s=20.0, num_edges=20)


@pytest.fixture(scope="module")
def light_fast_report():
    return run(get_scenario("scale-stress-smoke").with_(**_LIGHT_OVERRIDES))


@pytest.fixture(scope="module")
def light_recorded_report():
    return run(
        get_scenario("scale-stress-smoke").with_(record_frames=True, **_LIGHT_OVERRIDES)
    )


class TestFastPathAgreesWithRecordedPath:
    def test_same_workload(self, light_fast_report, light_recorded_report):
        assert light_fast_report.frames == light_recorded_report.frames
        assert light_fast_report.streams == light_recorded_report.streams
        assert light_fast_report.frames > 500

    def test_same_accuracy_and_bandwidth(self, light_fast_report, light_recorded_report):
        assert light_fast_report.f_score == light_recorded_report.f_score
        assert (
            light_fast_report.bandwidth_utilization
            == light_recorded_report.bandwidth_utilization
        )

    def test_same_latency_breakdown(self, light_fast_report, light_recorded_report):
        for key, value in light_recorded_report.latency.items():
            assert light_fast_report.latency[key] == pytest.approx(
                value, rel=1e-9, abs=1e-12
            ), key

    def test_same_tail_percentiles(self, light_fast_report, light_recorded_report):
        # Below the accumulator's exact limit both paths use nearest-rank
        # over identical samples, so the tails agree to the last bit.
        assert light_fast_report.p50_latency_ms == light_recorded_report.p50_latency_ms
        assert light_fast_report.p95_latency_ms == light_recorded_report.p95_latency_ms
        assert light_fast_report.p99_latency_ms == light_recorded_report.p99_latency_ms

    def test_same_queueing_and_throughput(self, light_fast_report, light_recorded_report):
        assert light_fast_report.queue_delay_ms == pytest.approx(
            light_recorded_report.queue_delay_ms, rel=1e-9, abs=1e-12
        )
        assert light_fast_report.throughput_fps == pytest.approx(
            light_recorded_report.throughput_fps, rel=1e-9
        )
        assert light_fast_report.makespan_s == pytest.approx(
            light_recorded_report.makespan_s, rel=1e-9
        )

    def test_same_per_edge_frame_counts(self, light_fast_report, light_recorded_report):
        fast_edges = {edge["edge_id"]: edge["frames_processed"] for edge in light_fast_report.edges}
        recorded_edges = {
            edge["edge_id"]: edge["frames_processed"] for edge in light_recorded_report.edges
        }
        assert fast_edges == recorded_edges


class TestFastPathDeterminism:
    def test_seeded_fast_runs_are_bit_identical(self):
        spec = get_scenario("scale-stress-smoke").with_(duration_s=10.0)
        first = run(spec)
        second = run(spec)
        assert first.to_dict() == second.to_dict()

    def test_recorded_golden_pin_unaffected_by_fast_path_machinery(self):
        """The recorded path's seeded runs stay bit-for-bit reproducible."""
        spec = get_scenario("cluster-uniform")
        assert spec.record_frames
        assert run(spec).to_dict() == run(spec).to_dict()


# -- spec validation ----------------------------------------------------------
class TestSpecValidation:
    def test_reference_engine_requires_recording(self):
        with pytest.raises(ValueError, match="reference_engine"):
            ScenarioSpec(
                deployment="cluster", record_frames=False, reference_engine=True
            )

    def test_fast_path_is_cluster_only(self):
        with pytest.raises(ValueError, match="record_frames"):
            ScenarioSpec(deployment="single", record_frames=False)

    def test_traffic_video_must_exist(self):
        with pytest.raises(ValueError, match="traffic_video"):
            ScenarioSpec(
                deployment="cluster",
                traffic="poisson",
                traffic_video="no-such-video",
            )

    def test_traffic_video_requires_traffic(self):
        with pytest.raises(ValueError, match="traffic_video"):
            ScenarioSpec(deployment="cluster", traffic_video="stress")

    def test_scale_stress_scenarios_are_registered(self):
        full = get_scenario("scale-stress")
        smoke = get_scenario("scale-stress-smoke")
        reference = get_scenario("scale-stress-reference")
        assert not full.record_frames and not smoke.record_frames
        assert reference.reference_engine and reference.record_frames
        assert full.num_edges >= 100
        # ~1e5 streams / 1e6 frames offered over the arrival horizon.
        assert full.offered_rate * full.duration_s >= 1e5
        assert full.offered_rate * full.duration_s * full.frames >= 1e6

    def test_model_axes_must_name_library_profiles(self):
        with pytest.raises(ValueError, match="edge_model"):
            ScenarioSpec(deployment="cluster", edge_model="no-such-model")
        with pytest.raises(ValueError, match="cloud_model"):
            ScenarioSpec(deployment="cluster", cloud_model="no-such-model")

    def test_stress_profiles_never_hallucinate(self):
        assert MODEL_LIBRARY["stress-edge"].false_positive_rate == 0.0
        assert MODEL_LIBRARY["stress-cloud"].false_positive_rate == 0.0
        stress = get_scenario("scale-stress")
        assert stress.edge_model == "stress-edge"
        assert stress.cloud_model == "stress-cloud"


# -- static-video fast lanes (shared frames, skipped RNG mints) ---------------
class TestStaticVideoSharing:
    def test_is_static_flags_only_content_free_presets(self):
        assert VIDEO_LIBRARY["stress"].is_static
        for key in ("v1", "v2", "v3", "v4", "v5"):
            assert not VIDEO_LIBRARY[key].is_static

    def test_static_videos_share_one_frame_tuple(self):
        first = list(make_video("stress", num_frames=7).frames())
        second = list(make_video("stress", num_frames=7).frames())
        other = list(make_video("stress", num_frames=8).frames())
        assert [a is b for a, b in zip(first, second)] == [True] * 7
        assert len(other) == 8 and other[0] is not first[0]
        assert all(frame.objects == () for frame in first)

    def test_static_video_never_draws_from_its_rng(self):
        rng = np.random.default_rng(123)
        witness = np.random.default_rng(123)
        for _ in make_video("stress", num_frames=50, rng=rng).frames():
            pass
        assert rng.normal() == witness.normal()

    def test_traffic_source_reuses_one_rng_for_static_streams(self):
        config = TrafficConfig(
            offered_rate=5.0, duration_s=2.0, video_keys=("stress",)
        )
        videos = [
            video
            for _, video in TrafficSource(config, RngRegistry(7)).streams()
        ]
        assert len(videos) >= 2
        assert all(video.rng is videos[0].rng for video in videos)


# -- interval tracking gate ---------------------------------------------------
class TestTrackIntervalsGate:
    def test_untracked_server_skips_interval_history_but_not_busy_time(self):
        tracked = Server(capacity=1)
        untracked = Server(capacity=1)
        untracked.track_intervals = False
        for server in (tracked, untracked):
            start, _ = server.acquire(0.0)
            server.finish(start, 2.0)
        assert untracked.busy_time == tracked.busy_time == 2.0
        assert tracked.load(2.0, window=4.0) > 0.0
        assert untracked.load(2.0, window=4.0) == 0.0
