"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import ClockError, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now == 2.0

    def test_advance_by_zero_is_allowed(self):
        clock = SimClock(start=3.0)
        assert clock.advance(0.0) == 3.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_future_timestamp(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_fork_starts_at_current_time(self):
        clock = SimClock()
        clock.advance(2.0)
        branch = clock.fork()
        assert branch.now == 2.0

    def test_fork_is_independent(self):
        clock = SimClock()
        branch = clock.fork()
        branch.advance(5.0)
        assert clock.now == 0.0
        assert branch.now == 5.0
