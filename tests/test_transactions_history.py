"""Tests for execution histories and the <h ordering."""

from repro.transactions.history import History
from repro.transactions.model import SectionKind
from repro.transactions.ops import Operation, OperationKind


def _read(key: str) -> Operation:
    return Operation(OperationKind.READ, key)


def _write(key: str) -> Operation:
    return Operation(OperationKind.WRITE, key, 1)


class TestHistory:
    def test_record_and_iterate(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0)
        history.record_section("t1", SectionKind.FINAL, 2.0)
        assert len(history) == 2
        assert [r.section for r in history] == [SectionKind.INITIAL, SectionKind.FINAL]

    def test_sections_of(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0)
        history.record_section("t2", SectionKind.INITIAL, 2.0)
        assert len(history.sections_of("t1")) == 1

    def test_section_lookup(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0)
        assert history.section("t1", SectionKind.INITIAL) is not None
        assert history.section("t1", SectionKind.FINAL) is None

    def test_transaction_ids_in_first_commit_order(self):
        history = History()
        history.record_section("b", SectionKind.INITIAL, 1.0)
        history.record_section("a", SectionKind.INITIAL, 2.0)
        history.record_section("b", SectionKind.FINAL, 3.0)
        assert history.transaction_ids() == ["b", "a"]

    def test_ordered_before_by_commit_time(self):
        history = History()
        first = history.record_section("t1", SectionKind.INITIAL, 1.0)
        second = history.record_section("t2", SectionKind.INITIAL, 5.0)
        assert history.ordered_before(first, second)
        assert not history.ordered_before(second, first)

    def test_ordered_before_ties_broken_by_sequence(self):
        history = History()
        first = history.record_section("t1", SectionKind.INITIAL, 1.0)
        second = history.record_section("t2", SectionKind.INITIAL, 1.0)
        assert history.ordered_before(first, second)

    def test_conflicting_pairs_detects_rw_conflicts(self):
        history = History()
        history.record_section("t1", SectionKind.INITIAL, 1.0, operations=(_read("x"),))
        history.record_section("t2", SectionKind.INITIAL, 2.0, operations=(_write("x"),))
        history.record_section("t3", SectionKind.INITIAL, 3.0, operations=(_read("y"),))
        pairs = history.conflicting_pairs()
        assert ("t1", "t2") in pairs
        assert all("t3" not in pair for pair in pairs)

    def test_section_record_labels(self):
        history = History()
        record = history.record_section("t9", SectionKind.FINAL, 1.0)
        assert record.label == "s^f_t9"

    def test_conflicts_across_sections(self):
        history = History()
        history.record_section("t1", SectionKind.FINAL, 2.0, operations=(_write("x"),))
        history.record_section("t2", SectionKind.INITIAL, 3.0, operations=(_read("x"),))
        assert history.conflicting_pairs() == [("t1", "t2")]
