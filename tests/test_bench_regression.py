"""Tests for the benchmark perf-regression gate (analysis/regression.py)."""

import json

import pytest

from repro.analysis.regression import (
    ARTIFACT_SCHEMA,
    DEFAULT_THRESHOLD,
    compare_artifact_files,
    compare_artifacts,
    migrate_artifact,
)


def _artifact(throughput: float, queue_delay: float, edges: int = 2) -> dict:
    return {
        "seed": 2022,
        "scaleout": [
            {
                "edges": edges,
                "placement": "round-robin",
                "throughput_fps": throughput,
                "mean_queue_delay_ms": queue_delay,
                "f_score": 0.9,
            }
        ],
        "cloud_contention": [
            {"cloud_servers": 2, "throughput_fps": throughput, "mean_queue_delay_ms": queue_delay}
        ],
    }


class TestCompareArtifacts:
    def test_identical_artifacts_pass(self):
        artifact = _artifact(10.0, 500.0)
        result = compare_artifacts(artifact, artifact)
        assert result.passed
        assert result.compared_cells == 2
        assert "PASS" in result.describe()

    def test_small_drift_within_threshold_passes(self):
        result = compare_artifacts(_artifact(10.0, 500.0), _artifact(9.0, 550.0))
        assert result.passed

    def test_throughput_collapse_fails(self):
        result = compare_artifacts(_artifact(10.0, 500.0), _artifact(5.0, 500.0))
        assert not result.passed
        assert any(d.metric == "throughput_fps" for d in result.regressions)
        assert "FAIL" in result.describe()

    def test_queue_delay_blowup_fails(self):
        result = compare_artifacts(_artifact(10.0, 500.0), _artifact(10.0, 800.0))
        assert not result.passed
        drift = result.regressions[0]
        assert drift.metric == "mean_queue_delay_ms"
        assert drift.relative_drift == pytest.approx(0.6)

    def test_custom_threshold(self):
        baseline, candidate = _artifact(10.0, 500.0), _artifact(8.9, 500.0)
        assert compare_artifacts(baseline, candidate, threshold=0.2).passed
        assert not compare_artifacts(baseline, candidate, threshold=0.1).passed
        with pytest.raises(ValueError):
            compare_artifacts(baseline, candidate, threshold=0.0)

    def test_added_and_removed_cells_do_not_fail_the_gate(self):
        """Growing (or pruning) the grid is not a perf regression."""
        result = compare_artifacts(_artifact(10.0, 500.0, edges=2), _artifact(10.0, 500.0, edges=4))
        assert result.passed
        assert result.added_cells and result.removed_cells
        assert result.compared_cells == 1  # the cloud_contention cell still matches

    def test_adaptive_cell_gates_f_score_and_tuner_rescores(self):
        """The v7 ``adaptive`` section is matched by label and gated on
        F-score drift and incremental-tuner work blowups."""

        def adaptive_artifact(f_score: float, rescores: float) -> dict:
            return {
                "adaptive": [
                    {
                        "label": "retune",
                        "f_score": f_score,
                        "tuner_frame_rescores": rescores,
                    }
                ]
            }

        baseline = adaptive_artifact(0.9, 1000.0)
        assert compare_artifacts(baseline, adaptive_artifact(0.9, 1000.0)).passed
        dropped = compare_artifacts(baseline, adaptive_artifact(0.6, 1000.0))
        assert any(d.metric == "f_score" for d in dropped.regressions)
        blowup = compare_artifacts(baseline, adaptive_artifact(0.9, 8000.0))
        assert any(d.metric == "tuner_frame_rescores" for d in blowup.regressions)

    def test_zero_baseline_is_only_flagged_when_candidate_moves(self):
        baseline = _artifact(0.0, 0.0)
        assert compare_artifacts(baseline, _artifact(0.0, 0.0)).passed
        assert not compare_artifacts(baseline, _artifact(3.0, 0.0)).passed

    def test_file_level_wrapper(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        candidate_path = tmp_path / "candidate.json"
        baseline_path.write_text(json.dumps(_artifact(10.0, 500.0)))
        candidate_path.write_text(json.dumps(_artifact(10.0, 500.0)))
        result = compare_artifact_files(baseline_path, candidate_path)
        assert result.passed
        assert result.threshold == DEFAULT_THRESHOLD


class TestMigrateArtifact:
    def test_current_schema_passes_through_unchanged(self):
        artifact = {**_artifact(10.0, 500.0), "artifact_schema": ARTIFACT_SCHEMA}
        assert migrate_artifact(artifact) is artifact

    def test_v5_is_restamped_to_current(self):
        """A v5 baseline is a valid v7 artifact with no geo/adaptive cells."""
        v5 = {**_artifact(10.0, 500.0), "artifact_schema": 5}
        migrated = migrate_artifact(v5)
        assert migrated is not None
        assert migrated["artifact_schema"] == ARTIFACT_SCHEMA
        assert migrated["scaleout"] == v5["scaleout"]
        assert v5["artifact_schema"] == 5  # the input is not mutated

    def test_v6_is_restamped_to_current(self):
        """A v6 baseline is a valid v7 artifact with no adaptive cells."""
        v6 = {**_artifact(10.0, 500.0), "artifact_schema": 6}
        migrated = migrate_artifact(v6)
        assert migrated is not None
        assert migrated["artifact_schema"] == ARTIFACT_SCHEMA
        assert migrated["scaleout"] == v6["scaleout"]
        assert v6["artifact_schema"] == 6  # the input is not mutated

    def test_older_schemas_have_no_migration_path(self):
        for version in (1, 2, 3, 4):
            assert migrate_artifact({**_artifact(10.0, 500.0), "artifact_schema": version}) is None
        assert migrate_artifact(_artifact(10.0, 500.0)) is None  # pre-stamp == v1


class TestCompareReportsScript:
    """The CI entry point in benchmarks/compare_reports.py."""

    @pytest.fixture()
    def script_main(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "compare_reports.py"
        module_spec = importlib.util.spec_from_file_location("compare_reports", path)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        return module.main

    def test_missing_baseline_passes(self, script_main, tmp_path, capsys):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(_artifact(10.0, 500.0)))
        code = script_main(
            ["--baseline", str(tmp_path / "absent.json"), "--candidate", str(candidate)]
        )
        assert code == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, script_main, tmp_path):
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        baseline.write_text(json.dumps(_artifact(10.0, 500.0)))
        candidate.write_text(json.dumps(_artifact(4.0, 500.0)))
        code = script_main(["--baseline", str(baseline), "--candidate", str(candidate)])
        assert code == 1

    def test_clean_candidate_exits_zero(self, script_main, tmp_path):
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        baseline.write_text(json.dumps(_artifact(10.0, 500.0)))
        candidate.write_text(json.dumps(_artifact(10.5, 480.0)))
        code = script_main(["--baseline", str(baseline), "--candidate", str(candidate)])
        assert code == 0

    def test_v5_baseline_is_migrated_and_still_gates(self, script_main, tmp_path, capsys):
        """A migratable baseline is lifted, then gated for real: a clean
        candidate passes, a collapsed one still fails."""
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        baseline.write_text(json.dumps({**_artifact(10.0, 500.0), "artifact_schema": 5}))
        candidate.write_text(
            json.dumps({**_artifact(10.0, 500.0), "artifact_schema": ARTIFACT_SCHEMA})
        )
        assert script_main(["--baseline", str(baseline), "--candidate", str(candidate)]) == 0
        assert "migrated to" in capsys.readouterr().out

        candidate.write_text(
            json.dumps({**_artifact(4.0, 500.0), "artifact_schema": ARTIFACT_SCHEMA})
        )
        assert script_main(["--baseline", str(baseline), "--candidate", str(candidate)]) == 1

    def test_unmigratable_schema_mismatch_passes_with_notice(self, script_main, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        candidate = tmp_path / "candidate.json"
        baseline.write_text(json.dumps({**_artifact(10.0, 500.0), "artifact_schema": 2}))
        candidate.write_text(
            json.dumps({**_artifact(4.0, 500.0), "artifact_schema": ARTIFACT_SCHEMA})
        )
        assert script_main(["--baseline", str(baseline), "--candidate", str(candidate)]) == 0
        assert "no migration path" in capsys.readouterr().out
