"""Tests for operations and read/write sets."""

from repro.storage.locks import LockMode
from repro.transactions.ops import (
    Operation,
    OperationKind,
    ReadWriteSet,
    operations_conflict,
)


class TestOperation:
    def test_reads_do_not_conflict(self):
        a = Operation(OperationKind.READ, "x")
        b = Operation(OperationKind.READ, "x")
        assert not a.conflicts_with(b)

    def test_read_write_conflict_on_same_key(self):
        read = Operation(OperationKind.READ, "x")
        write = Operation(OperationKind.WRITE, "x", 1)
        assert read.conflicts_with(write)
        assert write.conflicts_with(read)

    def test_write_write_conflict(self):
        a = Operation(OperationKind.WRITE, "x", 1)
        b = Operation(OperationKind.WRITE, "x", 2)
        assert a.conflicts_with(b)

    def test_different_keys_never_conflict(self):
        a = Operation(OperationKind.WRITE, "x", 1)
        b = Operation(OperationKind.WRITE, "y", 2)
        assert not a.conflicts_with(b)

    def test_lock_mode(self):
        assert Operation(OperationKind.READ, "x").lock_mode is LockMode.SHARED
        assert Operation(OperationKind.WRITE, "x").lock_mode is LockMode.EXCLUSIVE

    def test_operations_conflict_helper(self):
        left = [Operation(OperationKind.READ, "a"), Operation(OperationKind.WRITE, "b")]
        right = [Operation(OperationKind.READ, "b")]
        assert operations_conflict(left, right)
        assert not operations_conflict(left, [Operation(OperationKind.READ, "a")])


class TestReadWriteSet:
    def test_keys_union(self):
        rwset = ReadWriteSet(reads=frozenset({"a"}), writes=frozenset({"b"}))
        assert rwset.keys == {"a", "b"}

    def test_lock_requests_prefer_exclusive(self):
        rwset = ReadWriteSet(reads=frozenset({"a", "b"}), writes=frozenset({"b"}))
        requests = dict(rwset.lock_requests())
        assert requests["b"] is LockMode.EXCLUSIVE
        assert requests["a"] is LockMode.SHARED

    def test_merged(self):
        left = ReadWriteSet(reads=frozenset({"a"}), writes=frozenset({"b"}))
        right = ReadWriteSet(reads=frozenset({"c"}), writes=frozenset({"a"}))
        merged = left.merged(right)
        assert merged.reads == {"a", "c"}
        assert merged.writes == {"a", "b"}

    def test_conflicts_when_write_overlaps(self):
        left = ReadWriteSet(writes=frozenset({"x"}))
        right = ReadWriteSet(reads=frozenset({"x"}))
        assert left.conflicts_with(right)
        assert right.conflicts_with(left)

    def test_no_conflict_between_read_only_sets(self):
        left = ReadWriteSet(reads=frozenset({"x"}))
        right = ReadWriteSet(reads=frozenset({"x"}))
        assert not left.conflicts_with(right)

    def test_from_operations(self):
        operations = [
            Operation(OperationKind.READ, "a"),
            Operation(OperationKind.WRITE, "b", 1),
            Operation(OperationKind.READ, "b"),
        ]
        rwset = ReadWriteSet.from_operations(operations)
        assert rwset.reads == {"a", "b"}
        assert rwset.writes == {"b"}

    def test_empty_set_conflicts_with_nothing(self):
        empty = ReadWriteSet()
        busy = ReadWriteSet(reads=frozenset({"a"}), writes=frozenset({"b"}))
        assert not empty.conflicts_with(busy)
        assert not busy.conflicts_with(empty)
