"""Tests for the undo log."""

from repro.storage.kvstore import KeyValueStore
from repro.storage.wal import UndoLog


class TestUndoLog:
    def test_log_write_captures_before_image(self, store):
        store.write("k", "before")
        log = UndoLog(store)
        record = log.log_write("t1", "k", "after")
        assert record.before == "before"
        assert record.after == "after"

    def test_before_image_of_new_key_is_none(self, store):
        log = UndoLog(store)
        assert log.log_write("t1", "new", 1).before is None

    def test_undo_restores_values_in_reverse_order(self, store):
        log = UndoLog(store)
        store.write("k", "v0")
        log.log_write("t1", "k", "v1")
        store.write("k", "v1", writer="t1")
        log.log_write("t1", "k", "v2")
        store.write("k", "v2", writer="t1")

        log.undo("t1")
        assert store.read("k") == "v0"

    def test_undo_unknown_transaction_is_noop(self, store):
        log = UndoLog(store)
        assert log.undo("missing") == []

    def test_undo_returns_undone_records(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        store.write("a", 1, writer="t1")
        log.log_write("t1", "b", 2)
        store.write("b", 2, writer="t1")
        undone = log.undo("t1")
        assert [record.key for record in undone] == ["b", "a"]

    def test_forget_discards_records(self, store):
        log = UndoLog(store)
        log.log_write("t1", "k", 1)
        store.write("k", 1, writer="t1")
        log.forget("t1")
        log.undo("t1")
        assert store.read("k") == 1  # nothing undone

    def test_touched_keys(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        log.log_write("t1", "b", 2)
        assert log.touched_keys("t1") == {"a", "b"}
        assert log.touched_keys("t2") == frozenset()

    def test_dependents_finds_overlapping_transactions(self, store):
        log = UndoLog(store)
        log.log_write("t1", "shared", 1)
        log.log_write("t2", "shared", 2)
        log.log_write("t3", "other", 3)
        assert log.dependents("t1") == {"t2"}

    def test_records_for_returns_in_order(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        log.log_write("t1", "b", 2)
        assert [r.key for r in log.records_for("t1")] == ["a", "b"]
