"""Tests for the undo log and the redo write-ahead log."""

from repro.storage.kvstore import KeyValueStore
from repro.storage.wal import UndoLog, WriteAheadLog, restore_from_checkpoint


class TestUndoLog:
    def test_log_write_captures_before_image(self, store):
        store.write("k", "before")
        log = UndoLog(store)
        record = log.log_write("t1", "k", "after")
        assert record.before == "before"
        assert record.after == "after"

    def test_before_image_of_new_key_is_none(self, store):
        log = UndoLog(store)
        assert log.log_write("t1", "new", 1).before is None

    def test_undo_restores_values_in_reverse_order(self, store):
        log = UndoLog(store)
        store.write("k", "v0")
        log.log_write("t1", "k", "v1")
        store.write("k", "v1", writer="t1")
        log.log_write("t1", "k", "v2")
        store.write("k", "v2", writer="t1")

        log.undo("t1")
        assert store.read("k") == "v0"

    def test_undo_unknown_transaction_is_noop(self, store):
        log = UndoLog(store)
        assert log.undo("missing") == []

    def test_undo_returns_undone_records(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        store.write("a", 1, writer="t1")
        log.log_write("t1", "b", 2)
        store.write("b", 2, writer="t1")
        undone = log.undo("t1")
        assert [record.key for record in undone] == ["b", "a"]

    def test_forget_discards_records(self, store):
        log = UndoLog(store)
        log.log_write("t1", "k", 1)
        store.write("k", 1, writer="t1")
        log.forget("t1")
        log.undo("t1")
        assert store.read("k") == 1  # nothing undone

    def test_touched_keys(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        log.log_write("t1", "b", 2)
        assert log.touched_keys("t1") == {"a", "b"}
        assert log.touched_keys("t2") == frozenset()

    def test_dependents_finds_overlapping_transactions(self, store):
        log = UndoLog(store)
        log.log_write("t1", "shared", 1)
        log.log_write("t2", "shared", 2)
        log.log_write("t3", "other", 3)
        assert log.dependents("t1") == {"t2"}

    def test_records_for_returns_in_order(self, store):
        log = UndoLog(store)
        log.log_write("t1", "a", 1)
        log.log_write("t1", "b", 2)
        assert [r.key for r in log.records_for("t1")] == ["a", "b"]


class TestWriteAheadLog:
    def test_lsns_are_dense_and_monotonic(self):
        wal = WriteAheadLog()
        records = [wal.append(f"t{i}", f"k{i}", i) for i in range(5)]
        assert [record.lsn for record in records] == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5
        assert len(wal) == 5

    def test_records_since_returns_the_tail(self):
        wal = WriteAheadLog()
        for index in range(5):
            wal.append("t", f"k{index}", index)
        tail = wal.records_since(3)
        assert [record.lsn for record in tail] == [4, 5]
        assert wal.records_since(5) == ()
        assert len(wal.records_since(0)) == 5

    def test_checkpoint_covers_the_current_lsn(self):
        wal = WriteAheadLog()
        wal.append("t1", "a", 1)
        checkpoint = wal.take_checkpoint({"a": 1})
        assert checkpoint.lsn == 1
        assert checkpoint.num_keys == 1
        assert wal.latest_checkpoint is checkpoint
        wal.append("t2", "b", 2)
        # Checkpoints do not consume LSNs.
        assert wal.last_lsn == 2

    def test_replay_into_applies_only_the_tail(self):
        wal = WriteAheadLog()
        wal.append("t1", "a", 1)
        checkpoint = wal.take_checkpoint({"a": 1})
        wal.append("t2", "a", 2)
        wal.append("t3", "b", 3)

        store = restore_from_checkpoint(checkpoint)
        replayed = wal.replay_into(store, after_lsn=checkpoint.lsn)
        assert len(replayed) == 2
        assert store.snapshot() == {"a": 2, "b": 3}
        # Replayed writes are attributed to their original transactions.
        assert store.read_version("b").writer == "t3"

    def test_restore_from_no_checkpoint_is_empty(self):
        store = restore_from_checkpoint(None)
        assert len(store) == 0

    def test_checkpoint_state_is_copied(self):
        wal = WriteAheadLog()
        state = {"a": 1}
        checkpoint = wal.take_checkpoint(state)
        state["a"] = 99
        assert checkpoint.state == {"a": 1}
