"""Tests for the Two-Stage 2PL (MS-SR) controller."""

import pytest

from repro.storage.kvstore import KeyValueStore
from repro.transactions.checker import check_ms_sr
from repro.transactions.exceptions import SectionOrderError, TransactionAborted
from repro.transactions.history import History
from repro.transactions.model import (
    MultiStageTransaction,
    SectionSpec,
    TransactionStatus,
)
from repro.transactions.ms_sr import TwoStage2PL
from repro.transactions.ops import ReadWriteSet


def _increment_transaction(txn_id: str, key: str = "x") -> MultiStageTransaction:
    """The §4.2 example: read in the initial section, write in the final."""

    def initial(ctx):
        value = ctx.read(key, default=0) or 0
        ctx.put_handoff("value", value)
        return value

    def final(ctx):
        ctx.write(key, ctx.get_handoff("value") + 1)
        return ctx.get_handoff("value") + 1

    rwset = ReadWriteSet(reads=frozenset({key}), writes=frozenset({key}))
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(body=initial, rwset=ReadWriteSet(reads=frozenset({key}))),
        final=SectionSpec(body=final, rwset=rwset),
    )


class TestTwoStage2PL:
    def test_full_lifecycle_commits(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        controller.process_initial(txn, now=0.0)
        assert txn.status is TransactionStatus.INITIAL_COMMITTED
        controller.process_final(txn, now=1.0)
        assert txn.is_committed
        assert store.read("x") == 1

    def test_locks_held_until_final_commit(self, store):
        controller = TwoStage2PL(store)
        first = _increment_transaction("t1")
        controller.process_initial(first, now=0.0)

        # A conflicting transaction cannot even start its initial section.
        second = _increment_transaction("t2")
        with pytest.raises(TransactionAborted):
            controller.process_initial(second, now=0.5)
        assert second.is_aborted

        controller.process_final(first, now=1.0)
        # After t1's final commit the locks are free again.
        third = _increment_transaction("t3")
        controller.process_initial(third, now=2.0)
        controller.process_final(third, now=3.0)
        assert store.read("x") == 2

    def test_abort_when_final_section_locks_unavailable(self, store):
        controller = TwoStage2PL(store)
        blocker = _increment_transaction("blocker", key="y")
        controller.process_initial(blocker, now=0.0)

        # This transaction reads z in its initial section but needs y in its
        # final section, which the blocker holds: it must abort before
        # initial commit (never exposing a response it cannot honour).
        def initial(ctx):
            return ctx.read("z", default=0)

        def final(ctx):
            ctx.write("y", 1)

        txn = MultiStageTransaction(
            transaction_id="t2",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(reads=frozenset({"z"}))),
            final=SectionSpec(body=final, rwset=ReadWriteSet(writes=frozenset({"y"}))),
        )
        with pytest.raises(TransactionAborted):
            controller.process_initial(txn, now=0.5)
        assert txn.is_aborted
        assert controller.stats.aborts == 1

    def test_aborted_initial_section_writes_are_undone(self, store):
        controller = TwoStage2PL(store)
        blocker = _increment_transaction("blocker", key="y")
        controller.process_initial(blocker, now=0.0)

        def initial(ctx):
            ctx.write("scratch", "dirty")

        def final(ctx):
            ctx.write("y", 1)

        txn = MultiStageTransaction(
            transaction_id="t2",
            initial=SectionSpec(body=initial, rwset=ReadWriteSet(writes=frozenset({"scratch"}))),
            final=SectionSpec(body=final, rwset=ReadWriteSet(writes=frozenset({"y"}))),
        )
        with pytest.raises(TransactionAborted):
            controller.process_initial(txn, now=0.5)
        assert store.read("scratch", default=None) is None

    def test_no_lost_update_anomaly(self, store):
        """Two increments must both take effect (the §4.2 anomaly is impossible)."""
        controller = TwoStage2PL(store)
        outcomes = []
        for i in range(2):
            txn = _increment_transaction(f"t{i}")
            try:
                controller.process_initial(txn, now=float(i))
                controller.process_final(txn, now=float(i) + 0.5)
                outcomes.append("committed")
            except TransactionAborted:
                outcomes.append("aborted")
        committed = outcomes.count("committed")
        assert store.read("x", default=0) == committed

    def test_final_without_initial_rejected(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        with pytest.raises(SectionOrderError):
            controller.process_final(txn)

    def test_cannot_process_initial_twice(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        controller.process_initial(txn)
        with pytest.raises(SectionOrderError):
            controller.process_initial(txn)

    def test_history_satisfies_ms_sr(self, store):
        history = History()
        controller = TwoStage2PL(store, history=history)
        now = 0.0
        for i in range(5):
            txn = _increment_transaction(f"t{i}")
            try:
                controller.process_initial(txn, now=now)
                now += 1.0
                controller.process_final(txn, now=now)
                now += 1.0
            except TransactionAborted:
                now += 1.0
        assert check_ms_sr(history)

    def test_lock_hold_duration_spans_both_sections(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        controller.process_initial(txn, now=0.0)
        controller.process_final(txn, now=1.5)
        assert controller.lock_manager.average_hold_time() == pytest.approx(1.5)

    def test_stats_counting(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        controller.process_initial(txn)
        controller.process_final(txn)
        assert controller.stats.initial_commits == 1
        assert controller.stats.final_commits == 1
        assert controller.stats.abort_rate == 0.0

    def test_pending_finals_tracking(self, store):
        controller = TwoStage2PL(store)
        txn = _increment_transaction("t1")
        controller.process_initial(txn)
        assert controller.pending_finals() == ("t1",)
        controller.process_final(txn)
        assert controller.pending_finals() == ()
