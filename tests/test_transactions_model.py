"""Tests for the multi-stage transaction model and section context."""

import pytest

from repro.storage.wal import UndoLog
from repro.transactions.exceptions import SectionOrderError
from repro.transactions.model import (
    MultiStageTransaction,
    SectionContext,
    SectionKind,
    SectionSpec,
    TransactionStatus,
)
from repro.transactions.ops import OperationKind, ReadWriteSet


def _transaction(txn_id: str = "t1", reads=(), writes=(), final_writes=()) -> MultiStageTransaction:
    return MultiStageTransaction(
        transaction_id=txn_id,
        initial=SectionSpec(
            body=lambda ctx: None,
            rwset=ReadWriteSet(reads=frozenset(reads), writes=frozenset(writes)),
        ),
        final=SectionSpec(
            body=lambda ctx: None, rwset=ReadWriteSet(writes=frozenset(final_writes))
        ),
    )


class TestSectionContext:
    def test_read_and_write_recorded(self, store):
        store.write("x", 10)
        ctx = SectionContext("t1", SectionKind.INITIAL, store)
        assert ctx.read("x") == 10
        ctx.write("y", 20)
        kinds = [op.kind for op in ctx.operations]
        assert kinds == [OperationKind.READ, OperationKind.WRITE]
        assert store.read("y") == 20

    def test_read_default(self, store):
        ctx = SectionContext("t1", SectionKind.INITIAL, store)
        assert ctx.read("missing", default="d") == "d"

    def test_delete_writes_tombstone(self, store):
        store.write("x", 1)
        ctx = SectionContext("t1", SectionKind.INITIAL, store)
        ctx.delete("x")
        assert store.read("x") is None

    def test_write_records_undo_image(self, store):
        log = UndoLog(store)
        store.write("x", "before")
        ctx = SectionContext("t1", SectionKind.INITIAL, store, undo_log=log)
        ctx.write("x", "after")
        assert log.records_for("t1")[0].before == "before"

    def test_handoff_between_sections(self, store):
        initial = SectionContext("t1", SectionKind.INITIAL, store)
        initial.put_handoff("key", "value")
        final = SectionContext("t1", SectionKind.FINAL, store, handoff=initial.handoff)
        assert final.get_handoff("key") == "value"
        assert final.get_handoff("missing", 3) == 3

    def test_final_section_cannot_put_handoff(self, store):
        ctx = SectionContext("t1", SectionKind.FINAL, store)
        with pytest.raises(SectionOrderError):
            ctx.put_handoff("k", 1)

    def test_apologies_collected(self, store):
        ctx = SectionContext("t1", SectionKind.FINAL, store)
        ctx.apologize("sorry")
        ctx.apologize("again")
        assert ctx.apologies == ("sorry", "again")

    def test_retract_initial_effects(self, store):
        log = UndoLog(store)
        initial = SectionContext("t1", SectionKind.INITIAL, store, undo_log=log)
        initial.write("x", "dirty")
        final = SectionContext("t1", SectionKind.FINAL, store, undo_log=log)
        restored = final.retract_initial_effects()
        assert restored == ["x"]
        assert store.read("x") is None
        assert final.retracted

    def test_retract_twice_is_noop(self, store):
        log = UndoLog(store)
        ctx = SectionContext("t1", SectionKind.FINAL, store, undo_log=log)
        assert ctx.retract_initial_effects() == []
        assert ctx.retract_initial_effects() == []

    def test_executed_rwset(self, store):
        store.write("a", 1)
        ctx = SectionContext("t1", SectionKind.INITIAL, store)
        ctx.read("a")
        ctx.write("b", 2)
        rwset = ctx.executed_rwset()
        assert rwset.reads == {"a"}
        assert rwset.writes == {"b"}


class TestMultiStageTransactionLifecycle:
    def test_initial_then_final_commit(self):
        txn = _transaction()
        assert txn.status is TransactionStatus.PENDING
        txn.mark_initial_committed("result", {"h": 1}, now=1.0)
        assert txn.status is TransactionStatus.INITIAL_COMMITTED
        assert txn.initial_result == "result"
        assert txn.handoff == {"h": 1}
        txn.mark_committed("final", ("sorry",), now=2.0)
        assert txn.is_committed
        assert txn.apologies == ("sorry",)
        assert txn.initial_commit_time == 1.0
        assert txn.final_commit_time == 2.0

    def test_cannot_final_commit_before_initial(self):
        txn = _transaction()
        with pytest.raises(SectionOrderError):
            txn.mark_committed(None, (), now=0.0)

    def test_cannot_initial_commit_twice(self):
        txn = _transaction()
        txn.mark_initial_committed(None, {}, now=0.0)
        with pytest.raises(SectionOrderError):
            txn.mark_initial_committed(None, {}, now=1.0)

    def test_abort_before_initial_commit(self):
        txn = _transaction()
        txn.mark_aborted()
        assert txn.is_aborted

    def test_cannot_abort_after_initial_commit(self):
        """The paper's guarantee: an initially committed transaction must finish."""
        txn = _transaction()
        txn.mark_initial_committed(None, {}, now=0.0)
        with pytest.raises(SectionOrderError):
            txn.mark_aborted()

    def test_combined_rwset(self):
        txn = _transaction(reads={"a"}, writes={"b"}, final_writes={"c"})
        combined = txn.combined_rwset()
        assert combined.reads == {"a"}
        assert combined.writes == {"b", "c"}

    def test_conflicts_with_considers_both_sections(self):
        first = _transaction("t1", writes={"x"})
        second = _transaction("t2", final_writes={"x"})
        third = _transaction("t3", reads={"y"})
        assert first.conflicts_with(second)
        assert not first.conflicts_with(third)

    def test_noop_section(self, store):
        spec = SectionSpec.noop()
        assert spec.body(SectionContext("t", SectionKind.FINAL, store)) is None
        assert spec.rwset.keys == frozenset()
