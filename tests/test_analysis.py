"""Tests for result tabulation and threshold sweeps."""

import pytest

from repro.analysis.sweeps import sweep_thresholds
from repro.analysis.tables import LATENCY_BREAKDOWN_HEADERS, format_table, latency_breakdown_row
from repro.analysis.timeline import (
    availability_timeline,
    batch_flush_profile,
    cloud_queue_profile,
    migration_timeline,
    stage_commit_counts,
)
from repro.core.config import CroesusConfig
from repro.core.optimizer import ThresholdEvaluator
from repro.core.results import LatencyBreakdown
from repro.sim.events import EventLog


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        table = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        assert "name" in table
        assert "a" in table
        assert "2.500" in table

    def test_column_alignment(self):
        table = format_table(["x"], [["longer-cell"], ["s"]])
        lines = table.splitlines()
        assert len({len(line.rstrip()) for line in lines if line.strip()}) <= 2

    def test_latency_breakdown_row(self):
        breakdown = LatencyBreakdown(edge_detection=0.2, cloud_detection=1.0)
        row = latency_breakdown_row("croesus", breakdown)
        assert row[0] == "croesus"
        assert row[2] == pytest.approx(200.0)
        assert len(row) == len(LATENCY_BREAKDOWN_HEADERS)


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        evaluator = ThresholdEvaluator.profile(CroesusConfig(seed=8), "v2", num_frames=40)
        return sweep_thresholds(evaluator, step=0.2)

    def test_scores_cover_grid(self, sweep):
        assert len(sweep.scores) == 15  # 5 grid values -> 5+4+3+2+1 pairs

    def test_score_lookup(self, sweep):
        assert sweep.score_at(0.2, 0.4) is not None
        assert sweep.score_at(0.11, 0.42) is None

    def test_heatmap_metrics(self, sweep):
        bu = sweep.heatmap("bu")
        f1 = sweep.heatmap("f_score")
        assert set(bu) == set(f1)
        assert all(0.0 <= value <= 1.0 for value in bu.values())

    def test_heatmap_invalid_metric(self, sweep):
        with pytest.raises(ValueError):
            sweep.heatmap("latency")

    def test_best_feasible(self, sweep):
        best = sweep.best_feasible(0.5)
        if best is not None:
            assert best.f_score >= 0.5
        assert sweep.best_feasible(1.01) is None

    def test_grid_values_sorted(self, sweep):
        values = sweep.grid_values()
        assert values == sorted(values)


class TestTimeline:
    def make_log(self):
        log = EventLog()
        log.record(1.0, "cloud_validate", frame_id=0, queue_delay=0.0)
        log.record(2.0, "cloud_validate", frame_id=1, queue_delay=0.5)
        log.record(3.0, "cloud_validate", frame_id=2, queue_delay=1.5)
        log.record(2.5, "stream_migrated", stream="cam0", from_edge=0, to_edge=1)
        log.record(4.0, "stream_migrated", stream="cam1", from_edge=0, to_edge=2)
        log.record(0.5, "initial_commit", frame_id=0)
        log.record(5.0, "final_commit", frame_id=0)
        return log

    def test_cloud_queue_profile(self):
        profile = cloud_queue_profile(self.make_log())
        assert profile.validations == 3
        assert profile.queued == 2
        assert profile.mean_delay == pytest.approx(2.0 / 3)
        assert profile.max_delay == pytest.approx(1.5)
        assert profile.queued_fraction == pytest.approx(2 / 3)

    def test_cloud_queue_profile_of_empty_log(self):
        profile = cloud_queue_profile(EventLog())
        assert profile.validations == 0
        assert profile.mean_delay == 0.0
        assert profile.queued_fraction == 0.0

    def test_migration_timeline(self):
        timeline = migration_timeline(self.make_log())
        assert timeline.count == 2
        assert timeline.streams_moved == {"cam0", "cam1"}
        assert timeline.moves_off(0) == 2
        assert timeline.moves_off(1) == 0
        assert timeline.moves[0] == (2.5, "cam0", 0, 1)

    def test_stage_commit_counts(self):
        counts = stage_commit_counts(self.make_log())
        assert counts == {"initial": 1, "final": 1}

    def test_batch_flush_profile(self):
        log = EventLog()
        log.record(1.0, "txn_batch_flush", edge=0, transactions=3, participants=2, duration=0.01)
        log.record(2.0, "txn_batch_flush", edge=1, transactions=5, participants=3, duration=0.03)
        profile = batch_flush_profile(log)
        assert profile.flushes == 2
        assert profile.transactions == 8
        assert profile.transactions_per_flush == pytest.approx(4.0)
        assert profile.mean_duration == pytest.approx(0.02)
        assert profile.max_participants == 3

    def test_batch_flush_profile_of_empty_log(self):
        profile = batch_flush_profile(EventLog())
        assert profile.flushes == 0
        assert profile.transactions_per_flush == 0.0

    def test_availability_timeline_pairs_cycles(self):
        log = EventLog()
        log.record(1.0, "edge_failed", edge=1, streams_migrated=2, txns_aborted=3)
        log.record(2.5, "edge_recovered", edge=1, records_replayed=7)
        log.record(4.0, "edge_failed", edge=0, streams_migrated=1, txns_aborted=0)
        log.record(0.5, "checkpoint", partitions=4, keys=10)
        timeline = availability_timeline(log)
        assert timeline.count == 2
        assert timeline.cycles[0] == (1, 1.0, 2.5, 7)
        assert timeline.cycles[1] == (0, 4.0, None, 0)  # run ended mid-outage
        assert timeline.total_downtime == pytest.approx(1.5)
        assert timeline.downtime_of(1) == pytest.approx(1.5)
        assert timeline.downtime_of(0) == 0.0
        assert timeline.checkpoints == 1
