"""Tests for detections and label sets."""

import pytest

from repro.detection.geometry import BoundingBox
from repro.detection.labels import Detection, LabelSet

from helpers import make_detection, make_label_set


class TestDetection:
    def test_confidence_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_detection(confidence=1.5)
        with pytest.raises(ValueError):
            make_detection(confidence=-0.1)

    def test_with_confidence(self):
        detection = make_detection(confidence=0.5)
        updated = detection.with_confidence(0.9)
        assert updated.confidence == 0.9
        assert updated.name == detection.name
        assert detection.confidence == 0.5  # original unchanged

    def test_with_name(self):
        detection = make_detection(name="car")
        assert detection.with_name("bus").name == "bus"

    def test_is_hashable(self):
        detection = make_detection()
        assert detection in {detection}


class TestLabelSet:
    def test_iteration_and_len(self):
        labels = make_label_set(0, make_detection("a"), make_detection("b"))
        assert len(labels) == 2
        assert [d.name for d in labels] == ["a", "b"]

    def test_bool_of_empty_set(self):
        assert not LabelSet(frame_id=0)
        assert make_label_set(0, make_detection())

    def test_names(self):
        labels = make_label_set(0, make_detection("dog"), make_detection("cat"))
        assert labels.names() == ["dog", "cat"]

    def test_filter_confidence(self):
        labels = make_label_set(
            0, make_detection("a", confidence=0.2), make_detection("b", confidence=0.9)
        )
        filtered = labels.filter_confidence(0.5)
        assert filtered.names() == ["b"]
        assert filtered.frame_id == labels.frame_id

    def test_filter_confidence_keeps_boundary(self):
        labels = make_label_set(0, make_detection("a", confidence=0.5))
        assert labels.filter_confidence(0.5).names() == ["a"]

    def test_filter_names(self):
        labels = make_label_set(0, make_detection("dog"), make_detection("cat"))
        assert labels.filter_names({"dog"}).names() == ["dog"]

    def test_best_by_confidence(self):
        labels = make_label_set(
            0, make_detection("low", confidence=0.3), make_detection("high", confidence=0.8)
        )
        assert labels.best_by_confidence().name == "high"

    def test_best_of_empty_is_none(self):
        assert LabelSet(frame_id=0).best_by_confidence() is None

    def test_closest_to_center(self):
        centered = Detection("center", 0.5, BoundingBox(600, 330, 680, 390))
        corner = Detection("corner", 0.5, BoundingBox(0, 0, 50, 50))
        labels = make_label_set(0, corner, centered)
        assert labels.closest_to_center(1280, 720).name == "center"

    def test_closest_to_center_empty_is_none(self):
        assert LabelSet(frame_id=0).closest_to_center(1280, 720) is None
