"""Warm failover under replication: downtime vs. replication factor.

With ``replication_factor > 1`` every partition's primary ships each
write-ahead-log append to ``factor - 1`` warm backups over the
cross-edge network.  When a seeded hazard kills an edge, failover no
longer waits for a checkpoint restore plus log replay: the most
caught-up backup is elected (highest applied LSN), the surviving log
tail closes its gap, and the partition re-homes — so ``downtime_ms``
collapses from the replay cost to roughly detection plus an election
round trip.

Every cell below executes the *same* seeded failure schedule (the
hazard draws come from a dedicated RNG stream the replication axes
never touch), so the downtime column is the failover path and nothing
else.  The second table holds the factor at 2 and sweeps the shipping
mode: ``sync`` acks wait for the slowest backup, ``quorum`` for a
majority, and ``async`` never waits but ships through a flush buffer —
backups run stale, and a crash has a longer gap to catch up.

Run with::

    PYTHONPATH=src python examples/replicated_failover.py
"""

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep


def hazard_base(**overrides) -> ScenarioSpec:
    base = dict(
        deployment="cluster",
        num_edges=4,
        streams=8,
        frames=30,
        seed=2022,
        consistency="ms-sr",
        workload="hotspot",
        hot_key_range=50,
        router="round-robin",
        fps=5.0,
        checkpoint_interval_s=1.0,
        failure_hazard_rate=0.25,
        failure_outage_s=1.5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def main() -> None:
    base = hazard_base()
    print(
        f"workload: {base.streams} hotspot streams x {base.frames} frames on "
        f"{base.num_edges} edges (MS-SR, seed {base.seed});\n"
        f"seeded hazard failures at rate {base.failure_hazard_rate}/s, "
        f"{base.failure_outage_s:.1f}s outages\n"
    )

    rows = []
    for cell in Sweep(base=base, axis="replication_factor", values=(1, 2, 3)).run():
        report = cell.report
        factor = cell.assignment["replication_factor"]
        rows.append(
            [
                factor,
                "replay" if factor == 1 else "promote",
                f"{report.downtime_ms:.2f}",
                f"{report.recovery_time_ms:.2f}",
                report.promotions,
                report.log_records_shipped,
                f"{report.replication_lag_ms:.2f}",
            ]
        )
    print(
        format_table(
            [
                "factor",
                "failover",
                "downtime (ms)",
                "recovery time (ms)",
                "promotions",
                "log records shipped",
                "mean ship lag (ms)",
            ],
            rows,
        )
    )

    print("\nshipping modes at factor 2:\n")
    rows = []
    for cell in Sweep(
        base=hazard_base(replication_factor=2),
        axis="replication_mode",
        values=("sync", "quorum", "async"),
    ).run():
        report = cell.report
        replication = report.replication or {}
        rows.append(
            [
                cell.assignment["replication_mode"],
                f"{report.downtime_ms:.2f}",
                f"{report.replication_lag_ms:.2f}",
                f"{replication.get('replication_ack_wait_ms', 0.0):.2f}",
                sum(
                    event["records_caught_up"]
                    for event in replication.get("promotion_events", ())
                ),
            ]
        )
    print(
        format_table(
            [
                "mode",
                "downtime (ms)",
                "mean ship lag (ms)",
                "mean ack wait (ms)",
                "gap records caught up",
            ],
            rows,
        )
    )
    print(
        "\nReplication turns recovery from 'replay the log tail' into 'promote\n"
        "a warm backup': downtime drops by orders of magnitude, paid for in\n"
        "shipped log records and (sync/quorum) per-append ack waits."
    )


if __name__ == "__main__":
    main()
