"""Open-loop traffic: flash crowds, admission control, and apology budgets.

Closed-loop runs hand the cluster a finite stream list and wait for it
to drain.  The open-loop traffic subsystem instead keeps minting camera
streams at a rate that does not care whether the cluster keeps up — the
heavy-traffic regime the paper's motivation describes.  This example
drives a two-edge cluster through a flash crowd (a rate spike to 4x the
baseline) twice: once with no overload control, once with
queue-threshold admission plus apology-budgeted load shedding.  Then it
sweeps the apology budget alone to show the shedding dial: a bigger
budget sheds more initial-stage frames into apologies, which keeps the
latency tail shorter.

Run with::

    PYTHONPATH=src python examples/open_loop_traffic.py
"""

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep, run_scenario


def describe(label: str, report) -> list[str]:
    traffic = report.traffic or {}
    return [
        label,
        f"{report.offered_load_fps:.1f}",
        f"{report.admitted_load_fps:.1f}",
        f"{report.goodput_fps:.2f}",
        f"{100.0 * report.shed_rate:.1f}%",
        str(int(traffic.get("rejected_streams", 0))),
        f"{report.p99_latency_ms:.0f}",
    ]


HEADERS = [
    "config",
    "offered (fps)",
    "admitted (fps)",
    "goodput (fps)",
    "shed rate",
    "rejected",
    "p99 (ms)",
]


def main() -> None:
    base = ScenarioSpec(
        deployment="cluster",
        num_edges=2,
        frames=10,
        fps=2.0,
        seed=2022,
        traffic="flash-crowd",
        offered_rate=1.2,
        peak_factor=4.0,
        duration_s=16.0,
    )
    print(
        f"flash crowd on {base.num_edges} edges: offered rate averages "
        f"{base.offered_rate:.1f} streams/s with a {base.peak_factor:.0f}x "
        f"spike mid-run (seed {base.seed})\n"
    )

    # Part 1: the same flash crowd with and without overload control.
    uncontrolled = run_scenario(base)
    controlled = run_scenario(
        base.with_(
            admission="queue-threshold",
            apology_budget=2.0,
        )
    )
    print(
        format_table(
            HEADERS,
            [
                describe("no control", uncontrolled),
                describe("admission + shedding", controlled),
            ],
        )
    )
    print(
        "\nWithout control every arrival is admitted and the spike piles up\n"
        "in the edge queues; with queue-threshold admission the cluster\n"
        "rejects streams it cannot serve and sheds initial-stage frames\n"
        "into apologies, keeping the latency tail bounded.\n"
    )

    # Part 2: the apology budget is a spec field, so comparing shedding
    # aggressiveness is a one-axis sweep.  None disables shedding.
    result = Sweep(
        base=base.with_(admission="queue-threshold"),
        axis="apology_budget",
        values=(None, 0.5, 2.0, 8.0),
    ).run()
    rows = []
    for cell in result:
        budget = cell.assignment["apology_budget"]
        label = "no shedding" if budget is None else f"budget {budget:.1f}/s"
        rows.append(describe(label, cell.report))
    print(format_table(HEADERS, rows))
    print(
        "\nThe apology budget caps how fast degradation may be spent: a\n"
        "larger budget sheds more of the spike into apologies (lower tail\n"
        "latency), a smaller one holds quality at the cost of queueing."
    )


if __name__ == "__main__":
    main()
