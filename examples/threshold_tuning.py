"""Bandwidth-threshold tuning (paper Section 3.4 / Figure 5).

Profiles a video once, sweeps the (θL, θU) grid, and compares the
brute-force optimum with the gradient-step search for a target F-score.

Usage::

    python examples/threshold_tuning.py [video_key] [target_f_score]
"""

from __future__ import annotations

import sys

from repro import CroesusConfig, ThresholdEvaluator, brute_force_search, gradient_step_search
from repro.analysis.sweeps import sweep_thresholds
from repro.analysis.tables import format_table


def main(video_key: str = "v2", target: float = 0.85) -> None:
    config = CroesusConfig(seed=5)
    print(f"Profiling video {video_key!r} (one pass of edge + cloud detection)...")
    evaluator = ThresholdEvaluator.profile(config, video_key, num_frames=100)

    sweep = sweep_thresholds(evaluator, step=0.1)
    print(f"\nBU / F-score heatmap over (θL, θU), video {video_key}:")
    rows = []
    for score in sorted(sweep.scores, key=lambda s: (s.lower, s.upper)):
        if score.upper - score.lower in (0.1, 0.3, 0.5):
            rows.append(
                [f"({score.lower:.1f}, {score.upper:.1f})", score.bandwidth_utilization, score.f_score]
            )
    print(format_table(["(θL, θU)", "BU", "F-score"], rows))

    brute = brute_force_search(evaluator, target_f_score=target)
    gradient = gradient_step_search(evaluator, target_f_score=target)

    print(f"\nTarget F-score µ = {target}")
    print(
        format_table(
            ["method", "(θL, θU)", "BU", "F-score", "evaluations"],
            [
                ["brute force", str(brute.thresholds), brute.best.bandwidth_utilization, brute.best.f_score, brute.evaluations],
                ["gradient step", str(gradient.thresholds), gradient.best.bandwidth_utilization, gradient.best.f_score, gradient.evaluations],
            ],
        )
    )
    speedup = brute.evaluations / max(gradient.evaluations, 1)
    print(f"\nGradient-step search used {speedup:.1f}x fewer threshold evaluations.")


if __name__ == "__main__":
    video = sys.argv[1] if len(sys.argv) > 1 else "v2"
    target = float(sys.argv[2]) if len(sys.argv) > 2 else 0.85
    main(video, target)
