"""Quickstart: run Croesus on a synthetic video and compare with the baselines.

Usage::

    python examples/quickstart.py [video_key]

where ``video_key`` is one of ``v1`` (park/dog), ``v2`` (street traffic),
``v3`` (airport runway), ``v4`` (mall surveillance), ``v5`` (pedestrians).
"""

from __future__ import annotations

import sys

from repro import (
    CroesusConfig,
    CroesusSystem,
    ThresholdEvaluator,
    brute_force_search,
    make_video,
    run_cloud_only,
    run_edge_only,
)
from repro.analysis.tables import format_table


def main(video_key: str = "v1", num_frames: int = 80) -> None:
    config = CroesusConfig(seed=1)

    # Croesus tunes its bandwidth thresholds per application: profile the
    # video once, then pick the pair that minimises edge-cloud bandwidth
    # subject to an F-score floor (paper Section 3.4).
    print(f"Tuning bandwidth thresholds for video {video_key!r}...")
    evaluator = ThresholdEvaluator.profile(config, video_key, num_frames=num_frames)
    optimum = brute_force_search(evaluator, target_f_score=0.85)
    config = config.with_thresholds(*optimum.thresholds)
    print(f"  optimal (θL, θU) = {optimum.thresholds}, predicted BU = "
          f"{optimum.best.bandwidth_utilization:.0%}")

    print(f"Running Croesus on video {video_key!r} ({num_frames} frames)...")
    system = CroesusSystem(config)
    croesus = system.run(make_video(video_key, num_frames=num_frames, seed=config.seed))

    print("Running the edge-only and cloud-only baselines...")
    edge = run_edge_only(config, video_key, num_frames=num_frames)
    cloud = run_cloud_only(config, video_key, num_frames=num_frames)

    rows = [
        [
            "croesus",
            croesus.f_score,
            croesus.average_initial_latency * 1000,
            croesus.average_final_latency * 1000,
            croesus.bandwidth_utilization,
        ],
        [
            "edge-only",
            edge.f_score,
            edge.average_initial_latency * 1000,
            edge.average_final_latency * 1000,
            edge.bandwidth_utilization,
        ],
        [
            "cloud-only",
            cloud.f_score,
            cloud.average_initial_latency * 1000,
            cloud.average_final_latency * 1000,
            cloud.bandwidth_utilization,
        ],
    ]
    print()
    print(
        format_table(
            ["system", "F-score", "initial latency (ms)", "final latency (ms)", "BU"], rows
        )
    )
    print()
    print(
        f"Croesus triggered {croesus.total_transactions} transactions, corrected "
        f"{croesus.total_corrections} labels and issued {croesus.total_apologies} apologies."
    )


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["v1"]))
