"""Walkthrough: scaling Croesus out to a multi-edge cluster.

Runs eight camera streams on a four-edge cluster three ways — uniform
round-robin placement, load-aware placement, and a deliberately skewed
hotspot placement — and shows how the placement policy changes per-edge
utilization and queueing delay while the sharded store keeps executing
cross-edge transactions through 2PC.  Finally it reruns the skewed
deployment under MS-SR with a contended hot key range, so the cross-edge
lock conflicts of paper Section 4.5 become visible as 2PC aborts.

Usage::

    python examples/edge_cluster.py
"""

from __future__ import annotations

from repro import ClusterConfig, ClusterSystem, ConsistencyLevel, CroesusConfig
from repro.analysis.tables import format_table
from repro.cluster import hotspot_bank_factory
from repro.video.library import make_camera_streams

NUM_EDGES = 4
NUM_STREAMS = 8
FRAMES = 25
SEED = 11


def make_streams(seed: int = SEED) -> list:
    """Eight independent cameras cycling over the paper's video presets."""
    return make_camera_streams(NUM_STREAMS, num_frames=FRAMES, seed=seed)


def run_policy(policy: str) -> None:
    config = ClusterConfig(
        base=CroesusConfig(seed=SEED),
        num_edges=NUM_EDGES,
        router_policy=policy,
    )
    result = ClusterSystem(config).run(make_streams())

    print(f"\n=== placement policy: {policy} ===")
    rows = [
        [
            edge.edge_id,
            len(edge.streams),
            edge.frames_processed,
            f"{edge.utilization:.0%}",
            f"{edge.mean_queue_delay * 1000:.0f}",
        ]
        for edge in result.edges
    ]
    print(format_table(["edge", "streams", "frames", "utilization", "queue delay (ms)"], rows))
    print(
        f"throughput {result.throughput_fps:.1f} fps | "
        f"cross-partition transactions {result.cross_partition_fraction:.0%} | "
        f"2PC abort rate {result.two_phase_abort_rate:.0%}"
    )


def run_contended() -> None:
    """Hotspot placement + a shared hot key range under MS-SR."""
    config = ClusterConfig(
        base=CroesusConfig(seed=SEED, consistency=ConsistencyLevel.MS_SR),
        num_edges=NUM_EDGES,
        router_policy="hotspot",
    )
    system = ClusterSystem(config, bank_factory=hotspot_bank_factory(SEED, key_range=25))
    result = system.run(make_streams())

    print("\n=== MS-SR + shared hot key range (25 keys) ===")
    print(
        f"transactions {result.stats.attempts} | "
        f"cross-partition {result.cross_partition_fraction:.0%} | "
        f"2PC abort rate {result.two_phase_abort_rate:.0%}"
    )
    print("Small hot ranges make remote lock denials — and therefore 2PC aborts —")
    print("much more likely, exactly as Figure 6b shows for a single partition.")


def main() -> None:
    for policy in ("round-robin", "least-loaded", "hotspot"):
        run_policy(policy)
    run_contended()


if __name__ == "__main__":
    main()
