"""Geo-hierarchical deployment: WAN commit variants and placement.

With ``regions > 1`` the cluster's edges split into contiguous regions
connected by seeded multi-hop WAN paths (``WAN_LINKS``).  Region-local
transactions stay on the fast-path 2PC they always used; cross-region
transactions pay the WAN, and *how* they pay it is the sweep below:

* ``global-2pc`` runs both commit phases from the origin region against
  every remote participant partition — 2 WAN round trips per remote
  partition;
* ``migrated-2pc`` hands coordination to the region owning the most
  participant partitions for one handoff round trip, then commits the
  (fewer) partitions left outside it — never more round trips than
  global, strictly fewer when participants concentrate remotely;
* ``async-reconcile`` commits region-locally with zero synchronous WAN
  charge and ships write-sets one-way; racing cross-region writes are
  resolved last-writer-wins, and each detected race spends an apology.

The second table pins placement: 6 streams over 4 single-edge regions
leave region 0 with double demand, and the ``dominant-region`` mover
re-homes the shared hot partitions toward it — cutting total WAN time
against static placement on the identical seed.

Run with::

    PYTHONPATH=src python examples/geo_regions.py
"""

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep
from repro.geo import CROSS_REGION_POLICIES, PLACEMENTS


def geo_base(**overrides) -> ScenarioSpec:
    base = dict(
        deployment="cluster",
        num_edges=4,
        streams=8,
        frames=40,
        seed=2022,
        consistency="ms-sr",
        workload="hotspot",
        hot_key_range=50,
        regions=2,
        wan_link="cross-country",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def main() -> None:
    base = geo_base()
    print(
        f"workload: {base.streams} hotspot streams x {base.frames} frames on "
        f"{base.num_edges} edges in {base.regions} regions "
        f"({base.wan_link} WAN, MS-SR, seed {base.seed})\n"
    )

    rows = []
    for cell in Sweep(
        base=base, axis="cross_region_policy", values=CROSS_REGION_POLICIES
    ).run():
        geo = cell.report.geo
        rows.append(
            [
                cell.assignment["cross_region_policy"],
                f"{geo['cross_region_txn_fraction']:.0%}",
                f"{geo['wan_round_trips_per_txn']:.2f}",
                f"{geo['cross_region_p99_ms']:.0f}",
                f"{geo['wan_time_s']:.1f}",
                geo["migrated_handoffs"],
                geo["apologies"],
            ]
        )
    print("cross-region commit variants (2 regions):")
    print(
        format_table(
            [
                "policy",
                "cross-region",
                "WAN RTs/txn",
                "commit p99 (ms)",
                "WAN time (s)",
                "handoffs",
                "apologies",
            ],
            rows,
        )
    )

    rows = []
    for cell in Sweep(
        base=geo_base(regions=4, streams=6), axis="placement", values=PLACEMENTS
    ).run():
        geo = cell.report.geo
        rows.append(
            [
                cell.assignment["placement"],
                geo["placement_moves"],
                f"{geo['wan_round_trips_per_txn']:.2f}",
                f"{geo['wan_time_s']:.1f}",
                geo["wan_bytes"],
            ]
        )
    print("\npartition placement under uneven demand (4 regions, 6 streams):")
    print(
        format_table(
            ["placement", "moves", "WAN RTs/txn", "WAN time (s)", "WAN bytes"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
