"""Compare the pluggable transaction policies on one seeded workload.

The consistency layer's commit protocol is a policy selected by name:

* ``immediate-2pc`` — every cross-edge commit runs its two-phase-commit
  round synchronously (the legacy default; coordinator messaging free);
* ``batched-2pc``   — the coordinator accumulates cross-edge commits per
  window and flushes one prepare/commit message pair per distinct remote
  participant for the whole batch;
* ``async-2pc``     — the prepare phase is issued when the initial
  section commits, overlapping the frame's cloud-validation round trip.

All three run the *same* seeded contention workload (8 hotspot streams
on 4 edges under MS-SR), so detections, commits and the F-score are
identical — only the coordinator's round-trip count and latency differ:
batching amortises messages, async hides them.

Run with::

    PYTHONPATH=src python examples/transaction_policies.py
"""

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep, run
from repro.transactions.policy import TXN_POLICIES


def main() -> None:
    base = ScenarioSpec(
        deployment="cluster",
        num_edges=4,
        streams=8,
        frames=10,
        seed=2022,
        consistency="ms-sr",
        workload="hotspot",
        hot_key_range=50,
    )
    print(f"workload: {base.streams} hotspot streams x {base.frames} frames "
          f"on {base.num_edges} edges (MS-SR, seed {base.seed})\n")

    # transaction_policy is a spec field, so comparing policies is just a
    # one-axis sweep (add max_workers=3 to fan it over a process pool).
    result = Sweep(base=base, axis="transaction_policy", values=TXN_POLICIES).run()

    rows = []
    for cell in result:
        report = cell.report
        rows.append(
            [
                report.transaction_policy,
                report.cross_partition_txns,
                report.coordinator_round_trips,
                f"{report.round_trips_per_cross_partition_txn:.2f}",
                report.coordinator_batches,
                f"{report.latency['commit_protocol_ms']:.2f}",
                f"{report.overlap_saved_ms:.1f}",
                f"{report.latency['final_ms']:.0f}",
                f"{report.f_score:.3f}",
            ]
        )
    print(
        format_table(
            [
                "policy",
                "cross-edge txns",
                "coordinator RTs",
                "RTs/txn",
                "batches",
                "commit (ms/frame)",
                "overlap saved (ms)",
                "final (ms)",
                "F-score",
            ],
            rows,
        )
    )

    immediate = result.report_at(transaction_policy="immediate-2pc")
    batched = result.report_at(transaction_policy="batched-2pc")
    async_2pc = result.report_at(transaction_policy="async-2pc")
    saved = (
        1.0
        - batched.round_trips_per_cross_partition_txn
        / immediate.round_trips_per_cross_partition_txn
    )
    print(f"\nbatching cut coordinator round trips per cross-edge transaction by {saved:.0%};")
    print(f"async 2PC hid {async_2pc.overlap_saved_ms:.1f} ms of prepare latency "
          "under cloud validation.")

    # The same policies also run on a single-edge deployment (where
    # everything is local, so the coordinator has nothing to do).
    single = run(ScenarioSpec(video="v1", frames=20, seed=7, transaction_policy="batched-2pc"))
    print(f"\nsingle-edge sanity check under batched-2pc: F-score {single.f_score:.3f}, "
          f"{single.coordinator_round_trips} coordinator round trips (all partitions local)")


if __name__ == "__main__":
    main()
