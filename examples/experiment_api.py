"""Walkthrough of the declarative experiment API.

One ``ScenarioSpec`` describes an experiment, one ``run()`` executes it
on either deployment, and one ``RunReport`` schema comes back — the same
schema the CLI's ``--json`` flag and the benchmark harness emit.

Usage::

    python examples/experiment_api.py
"""

from __future__ import annotations

import json

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep, get_scenario, list_scenarios, run


def main() -> None:
    # 1. A scenario is data: declare it, run it, get one report schema.
    print("1. One spec, one runner, both deployments")
    single = ScenarioSpec(video="v4", frames=40, seed=1)
    cluster = single.with_(deployment="cluster", streams=6, num_edges=3, router="hotspot")
    rows = []
    for spec in (single, cluster):
        report = run(spec)
        rows.append(
            [
                spec.deployment,
                report.frames,
                report.f_score,
                report.latency["initial_ms"],
                report.latency["final_ms"],
                report.bandwidth_utilization,
                report.queue_delay_ms,
            ]
        )
    print(
        format_table(
            ["deployment", "frames", "F-score", "initial (ms)", "final (ms)", "BU", "queue (ms)"],
            rows,
        )
    )

    # 2. Reports are JSON-first and replayable: the spec travels inside.
    print("\n2. Reports serialise losslessly (and name their own scenario)")
    report = run(cluster)
    payload = json.loads(report.to_json())
    replay = run(ScenarioSpec.from_dict(payload["scenario"]))
    print(f"   report keys: {sorted(payload)[:8]} ...")
    print(f"   replayed run is bit-for-bit identical: {replay.to_json() == report.to_json()}")

    # 3. Any spec field is a sweep axis; axes cross-product.
    print("\n3. Sweeping num_edges x router (the scale-out grid in four lines)")
    sweep = Sweep(base=cluster.with_(frames=20), axis="num_edges", values=[1, 2, 4]).and_axis(
        "router", ["round-robin", "hotspot"]
    )
    result = sweep.run()
    for router in ("round-robin", "hotspot"):
        series = result.series("throughput_fps", axis="num_edges", router=router)
        formatted = ", ".join(f"{edges}->{fps:.2f}" for edges, fps in series)
        print(f"   {router:12s} throughput (fps): {formatted}")
    best = result.report_at(num_edges=4, router="round-robin")
    print(f"   point lookup: 4 edges round-robin -> {best.queue_delay_ms:.0f} ms queue delay")

    # 4. The paper's evaluation grid is registered by name.
    print(f"\n4. Registered scenarios ({len(list_scenarios())} available)")
    spec = get_scenario("fig2-v1")
    print(f"   fig2-v1 = {spec.system} on {spec.video}, {spec.frames} frames")
    print("   (run any of them: python -m repro scenario fig2-v1 --json)")


if __name__ == "__main__":
    main()
