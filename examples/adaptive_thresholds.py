"""Incremental threshold tuning and online per-stream adaptation.

Two halves.  Offline: the incremental coordinate-descent tuner finds the
same (θL, θU) optimum as the exhaustive grid while re-matching an order
of magnitude fewer frames.  Online: the same tuner runs *inside* a
cluster simulation, periodically retuning each camera stream's
thresholds from its validated history, and is compared against the
static-threshold and feedback-controller runs.

Usage::

    python examples/adaptive_thresholds.py [video_key] [target_f_score]
"""

from __future__ import annotations

import sys

from repro import (
    CroesusConfig,
    ThresholdEvaluator,
    brute_force_search,
    coordinate_descent_search,
    get_sweep,
)
from repro.analysis.tables import format_table


def offline(video_key: str, target: float) -> None:
    config = CroesusConfig(seed=5)
    print(f"Profiling video {video_key!r} (one pass of edge + cloud detection)...")
    evaluator = ThresholdEvaluator.profile(config, video_key, num_frames=100)

    brute = brute_force_search(evaluator, target_f_score=target, step=0.05)
    descent = coordinate_descent_search(evaluator, target_f_score=target, step=0.05)

    print(f"\nTarget F-score µ = {target}, grid step 0.05:")
    rows = [
        [name, str(result.thresholds), result.best.bandwidth_utilization,
         result.best.f_score, result.evaluations, result.frame_rescores]
        for name, result in (("brute force", brute), ("coordinate descent", descent))
    ]
    print(format_table(
        ["method", "(θL, θU)", "BU", "F-score", "evaluations", "frame rescores"], rows
    ))
    assert descent.best == brute.best, "descent must land on the grid optimum"
    reduction = brute.frame_rescores / max(descent.frame_rescores, 1)
    print(
        f"\nSame optimum, {reduction:.1f}x fewer full-frame label matches — "
        "cheap enough to re-run inside the serving loop."
    )


def online() -> None:
    print("\nRunning the static-vs-adaptive cluster sweep (3 seeded cells)...")
    result = get_sweep("static-vs-adaptive").run()
    rows = []
    for cell in result.cells:
        report = cell.report
        mode = cell.assignment["threshold_adaptation"] or "static"
        rows.append(
            [mode, report.f_score, report.bandwidth_utilization,
             report.threshold_updates, report.tuner_frame_rescores]
        )
    print(format_table(
        ["adaptation", "F-score", "BU", "threshold updates", "frame rescores"], rows
    ))

    retune = next(
        cell.report for cell in result.cells
        if cell.assignment["threshold_adaptation"] == "retune"
    )
    adaptation = retune.adaptation
    print(
        f"\nretune tuner work: {retune.tuner_evaluations} pair evaluations at "
        f"{retune.tuner_frame_rescores} frame rescores (a non-incremental "
        f"evaluator would have paid {adaptation['tuner_grid_rescores']})."
    )
    print("final per-stream thresholds after drift:")
    for stream, (lower, upper) in sorted(adaptation["stream_thresholds"].items()):
        print(f"  {stream}: ({lower:g}, {upper:g})")


def main(video_key: str = "v2", target: float = 0.85) -> None:
    offline(video_key, target)
    online()


if __name__ == "__main__":
    video = sys.argv[1] if len(sys.argv) > 1 else "v2"
    target = float(sys.argv[2]) if len(sys.argv) > 2 else 0.85
    main(video, target)
