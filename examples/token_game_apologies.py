"""The multi-player AR token game of paper Section 4.4.

Demonstrates guesses and apologies under MS-IA: a transfer lands on the
wrong player because the edge model confused two players; the final
section re-routes the tokens when the cloud model reveals the truth, and
the overdraft repair retracts only the minimum set of dependent
transfers.

Usage::

    python examples/token_game_apologies.py
"""

from __future__ import annotations

from repro.core.apps.token_game import TokenGame
from repro.storage.kvstore import KeyValueStore
from repro.transactions.ms_ia import MSIAController


def print_balances(game: TokenGame, title: str) -> None:
    balances = ", ".join(f"{player}={game.balance(player)}" for player in game.players)
    print(f"{title:55s} {balances}")


def main() -> None:
    store = KeyValueStore()
    game = TokenGame(controller=MSIAController(store), players={"A": 50, "B": 10, "C": 0, "D": 0})
    print_balances(game, "Initial balances")

    # The edge model detects player B, but the recipient is actually D.
    t1 = game.transfer("t1", "A", "B", 50)
    game.run_initial(t1)
    print_balances(game, "t1 initial: A sends 50 to (detected) B")

    # B immediately spends the windfall.
    t2 = game.transfer("t2", "B", "C", 10)
    game.run_initial(t2)
    t3 = game.transfer("t3", "B", "C", 50)
    game.run_initial(t3)
    print_balances(game, "t2/t3 initial: B sends 10 and 50 to C")

    # The cloud confirms t2 and t3 (their triggers were correct).
    game.run_final(t2, true_recipient="C")
    game.run_final(t3, true_recipient="C")

    # The cloud reveals t1's true recipient was D: the final section
    # re-routes the 50 tokens and apologises.
    outcome = game.run_final(t1, true_recipient="D")
    print_balances(game, "t1 final: tokens re-routed from B to D")
    for apology in outcome.apologies:
        print(f"  apology: {apology}")

    # B is now overdrawn; the merge retracts the minimum set of transfers.
    print(f"\nInvariant (no negative balances) holds: {game.invariant_holds()}")
    apologies = game.repair_overdrafts()
    print_balances(game, "After overdraft repair")
    for apology in apologies:
        print(f"  apology: {apology}")
    print(f"Retracted transfers: {', '.join(game.retracted_transfers()) or 'none'}")
    print(f"Invariant holds: {game.invariant_holds()}")
    print(f"Total tokens conserved: {game.total_tokens()} (started with 60)")


if __name__ == "__main__":
    main()
