"""Smart-campus AR example (paper Section 2.1).

Task 1: detected buildings have their information read from the database
and rendered on the headset.  Task 2: clicking the auxiliary device
reserves a study room in the building closest to the center of the view.
Erroneous edge detections are corrected by the final sections, which move
or cancel reservations and issue apologies.

Usage::

    python examples/smart_campus_ar.py
"""

from __future__ import annotations

from repro import CroesusConfig, CroesusSystem
from repro.core.apps.smart_campus import SmartCampusApp
from repro.sim.rng import RngRegistry
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo

BUILDINGS = {
    "Engineering Building": {"study_rooms": 3, "hours": "8am-10pm", "floors": 5},
    "Science Library": {"study_rooms": 2, "hours": "24/7", "floors": 7},
    "Student Center": {"study_rooms": 1, "hours": "7am-11pm", "floors": 3},
}


def make_campus_video(num_frames: int = 60, seed: int = 11) -> SyntheticVideo:
    """A synthetic walk across campus: buildings come in and out of view and
    the user occasionally clicks the reserve button."""
    classes = tuple(
        ObjectClassSpec(
            name=name,
            confusable_name=other,
            arrival_rate=0.25,
            lifetime_frames=40,
            size_fraction=0.35,
            visibility=0.9,
            difficulty=1.4,
            speed=5.0,
        )
        for name, other in zip(BUILDINGS, list(BUILDINGS)[1:] + [list(BUILDINGS)[0]])
    )
    return SyntheticVideo(
        name="campus-walk",
        query_class="Engineering Building",
        classes=classes,
        num_frames=num_frames,
        rng=RngRegistry(seed).stream("campus"),
        auxiliary_click_rate=0.25,
    )


def main() -> None:
    config = CroesusConfig(seed=11, lower_threshold=0.2, upper_threshold=0.7)

    app = SmartCampusApp(buildings=BUILDINGS)
    system = CroesusSystem(config, bank=app.bank)
    app.install(system.edge.store)

    video = make_campus_video()
    result = system.run(video)
    store = system.edge.store

    print(f"Processed {result.num_frames} frames of the campus walk.")
    print(f"Transactions triggered: {result.total_transactions}")
    print(f"Labels corrected by the cloud: {result.total_corrections}")
    print(f"Apologies sent to the headset: {result.total_apologies}")
    print(f"Bandwidth utilisation: {result.bandwidth_utilization:.0%}")
    print()

    print("Study rooms remaining per building:")
    for name, info in BUILDINGS.items():
        remaining = store.read(f"rooms:{name}", default=info["study_rooms"])
        print(f"  {name:25s} {remaining}/{info['study_rooms']}")

    reservations = [key for key in store.keys() if key.startswith("reservation:") and store.exists(key)]
    print(f"\nActive reservations: {len(reservations)}")
    for key in reservations[:5]:
        print(f"  {key}: {store.read(key)}")


if __name__ == "__main__":
    main()
