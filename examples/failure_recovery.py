"""Replica failure and WAL-replay recovery across checkpoint intervals.

A cluster run can schedule replica failures: at ``fail_at`` the edge's
streams fail over to the least-loaded live replica, its in-flight
transactions resolve through the transaction-policy seam, and its
partitions lose their in-memory stores — only the per-partition
write-ahead logs survive.  At ``recover_at`` the restarted replica
rebuilds each partition from its latest checkpoint plus the replayed
log tail, and rejoins once the replay is done.

The replay is where the checkpoint interval matters: frequent
checkpoints leave a short log tail (fast recovery, more checkpoint
work); no checkpoints at all mean recovery replays the entire log.
This example injects the same seeded failure under four checkpoint
settings and prints the recovery cost of each — the
``failure-recovery`` sweep of the benchmark harness, in miniature.

Run with::

    PYTHONPATH=src python examples/failure_recovery.py
"""

from repro.analysis.tables import format_table
from repro.experiments import ScenarioSpec, Sweep


def main() -> None:
    base = ScenarioSpec(
        deployment="cluster",
        num_edges=4,
        streams=8,
        frames=30,
        seed=2022,
        consistency="ms-sr",
        workload="hotspot",
        hot_key_range=50,
        fps=5.0,
        failure_schedule=((1, 2.5, 4.0),),
        checkpoint_interval_s=1.0,
    )
    failure = base.failure_schedule[0]
    print(
        f"workload: {base.streams} hotspot streams x {base.frames} frames on "
        f"{base.num_edges} edges (MS-SR, seed {base.seed});\n"
        f"edge {int(failure[0])} fails at t={failure[1]:.1f}s and restarts at "
        f"t={failure[2]:.1f}s\n"
    )

    # checkpoint_interval_s is a spec field like any other, so comparing
    # recovery costs is a one-axis sweep.
    result = Sweep(
        base=base, axis="checkpoint_interval_s", values=(0.5, 1.0, 2.0, None)
    ).run()

    rows = []
    for cell in result:
        report = cell.report
        interval = cell.assignment["checkpoint_interval_s"]
        event = report.failure_events[0]
        rows.append(
            [
                "none" if interval is None else f"{interval:.1f}",
                report.checkpoints,
                event["records_replayed"],
                f"{report.recovery_time_ms:.1f}",
                f"{report.downtime_ms:.0f}",
                report.txns_aborted_by_failure,
                f"{report.f_score:.3f}",
            ]
        )
    print(
        format_table(
            [
                "checkpoint interval (s)",
                "checkpoints",
                "WAL records replayed",
                "recovery time (ms)",
                "downtime (ms)",
                "txns aborted",
                "F-score",
            ],
            rows,
        )
    )
    print(
        "\nFrequent checkpoints shorten the replayed log tail, so the replica\n"
        "rejoins sooner; with no checkpoints, recovery replays the whole log."
    )


if __name__ == "__main__":
    main()
