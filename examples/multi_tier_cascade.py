"""Generalized multi-stage processing (paper Section 3.5).

Builds a three-tier cascade — device → edge → cloud — where each tier
hosts a better (slower) model and bandwidth thresholding decides whether
a frame climbs to the next tier.  Compares it with the standard two-tier
Croesus deployment on the same video, illustrating the paper's
observation that for edge-cloud workloads the extra tier adds latency
without a decisive accuracy benefit.

Usage::

    python examples/multi_tier_cascade.py [video_key]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.core.multi_tier import MultiTierPipeline, TierSpec
from repro.core.thresholds import ThresholdPolicy
from repro.detection.profiles import CLOUD_YOLOV3_320, CLOUD_YOLOV3_416, EDGE_TINY_YOLOV3
from repro.network.latency import CROSS_COUNTRY, SAME_REGION
from repro.network.topology import CLOUD_XLARGE, EDGE_REGULAR, EDGE_SMALL
from repro.video.library import make_video


def build_two_tier() -> MultiTierPipeline:
    """The paper's standard deployment: edge (Tiny YOLOv3) + cloud (YOLOv3)."""
    return MultiTierPipeline(
        [
            TierSpec(
                name="edge",
                model=EDGE_TINY_YOLOV3,
                machine=EDGE_REGULAR,
                policy=ThresholdPolicy(0.3, 0.7),
            ),
            TierSpec(
                name="cloud",
                model=CLOUD_YOLOV3_416,
                machine=CLOUD_XLARGE,
                uplink=CROSS_COUNTRY,
            ),
        ],
        seed=7,
    )


def build_three_tier() -> MultiTierPipeline:
    """A device → edge → cloud cascade with thresholding at each hop."""
    return MultiTierPipeline(
        [
            TierSpec(
                name="device",
                model=EDGE_TINY_YOLOV3,
                machine=EDGE_SMALL,
                policy=ThresholdPolicy(0.3, 0.8),
            ),
            TierSpec(
                name="edge",
                model=CLOUD_YOLOV3_320,
                machine=EDGE_REGULAR,
                uplink=SAME_REGION,
                policy=ThresholdPolicy(0.4, 0.7),
            ),
            TierSpec(
                name="cloud",
                model=CLOUD_YOLOV3_416,
                machine=CLOUD_XLARGE,
                uplink=CROSS_COUNTRY,
            ),
        ],
        seed=7,
    )


def main(video_key: str = "v2", num_frames: int = 60) -> None:
    video_two = make_video(video_key, num_frames=num_frames, seed=7)
    video_three = make_video(video_key, num_frames=num_frames, seed=7)

    print(f"Running the two-tier and three-tier cascades on video {video_key!r}...")
    two_tier = build_two_tier().run(video_two)
    three_tier = build_three_tier().run(video_three)

    rows = [
        [
            "edge + cloud (2 tiers)",
            two_tier.f_score,
            two_tier.average_initial_latency * 1000,
            two_tier.average_final_latency * 1000,
            two_tier.average_tiers_visited,
        ],
        [
            "device + edge + cloud (3 tiers)",
            three_tier.f_score,
            three_tier.average_initial_latency * 1000,
            three_tier.average_final_latency * 1000,
            three_tier.average_tiers_visited,
        ],
    ]
    print(
        format_table(
            ["cascade", "F-score", "initial latency (ms)", "final latency (ms)", "avg tiers visited"],
            rows,
        )
    )
    print(
        "\nForwarding ratio past tier 0: "
        f"two-tier {two_tier.forwarding_ratio(0):.0%}, three-tier {three_tier.forwarding_ratio(0):.0%}"
    )
    print(
        "Forwarding ratio past tier 1 (three-tier only): "
        f"{three_tier.forwarding_ratio(1):.0%}"
    )


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["v2"]))
